package sim

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/machine"
)

// buildSum constructs a function that sums n float64s from array 0 into
// array 1 element 0:
//
//	s = 0; for i = 0..n-1 { s += a[i] }; out[0] = s
func buildSum(n int64) *ir.Func {
	f := &ir.Func{Name: "sum"}
	a := f.AddArray("a", n*8)
	out := f.AddArray("out", 8)

	base := f.NewReg(ir.RegInt)
	i := f.NewReg(ir.RegInt)
	lim := f.NewReg(ir.RegInt)
	p := f.NewReg(ir.RegInt)
	s := f.NewReg(ir.RegFP)
	v := f.NewReg(ir.RegFP)
	t := f.NewReg(ir.RegInt)
	ob := f.NewReg(ir.RegInt)

	entry := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	entry.Instrs = []*ir.Instr{
		{Op: ir.OpLdA, Dst: base, Imm: int64(a)},
		{Op: ir.OpMovi, Dst: i, Imm: 0},
		{Op: ir.OpMovi, Dst: lim, Imm: n},
		{Op: ir.OpFMovi, Dst: s, FImm: 0},
	}
	entry.Succs = []int{body.ID}

	body.Instrs = []*ir.Instr{
		{Op: ir.OpS8Add, Dst: p, Src: [2]ir.Reg{i, base}},
		{Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{p}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpFAdd, Dst: s, Src: [2]ir.Reg{s, v}},
		{Op: ir.OpAdd, Dst: i, Src: [2]ir.Reg{i}, UseImm: true, Imm: 1},
		{Op: ir.OpCmpLt, Dst: t, Src: [2]ir.Reg{i, lim}},
		{Op: ir.OpBne, Src: [2]ir.Reg{t}, Target: body.ID},
	}
	body.Succs = []int{body.ID, exit.ID}

	exit.Instrs = []*ir.Instr{
		{Op: ir.OpLdA, Dst: ob, Imm: int64(out)},
		{Op: ir.OpStF, Src: [2]ir.Reg{s, ob}, Mem: &ir.MemRef{Array: out, Base: 0, Width: 8}},
		{Op: ir.OpRet},
	}
	return f
}

func TestRunComputesSum(t *testing.T) {
	const n = 100
	f := buildSum(n)
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := int64(0); i < n; i++ {
		v := float64(i) * 1.5
		m.WriteF64(0, i*8, v)
		want += v
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadF64(1, 0); got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	wantInstrs := int64(4 + 6*n + 3)
	if met.Instrs != wantInstrs {
		t.Errorf("Instrs = %d, want %d", met.Instrs, wantInstrs)
	}
	if met.ByClass[ir.ClassLoad] != n {
		t.Errorf("loads = %d, want %d", met.ByClass[ir.ClassLoad], n)
	}
	if met.ByClass[ir.ClassStore] != 1 {
		t.Errorf("stores = %d, want 1", met.ByClass[ir.ClassStore])
	}
	if met.ByClass[ir.ClassBranch] != n+1 {
		t.Errorf("branches = %d, want %d", met.ByClass[ir.ClassBranch], n+1)
	}
	if met.Cycles <= met.Instrs {
		t.Errorf("Cycles = %d not greater than Instrs = %d (expected some stalls)", met.Cycles, met.Instrs)
	}
}

func TestLoadInterlockAttribution(t *testing.T) {
	// A load immediately followed by its consumer must stall for at least
	// the L1 latency minus one; the stall must be a load interlock.
	f := &ir.Func{Name: "il"}
	a := f.AddArray("a", 64)
	base := f.NewReg(ir.RegInt)
	v := f.NewReg(ir.RegFP)
	w := f.NewReg(ir.RegFP)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpLdA, Dst: base, Imm: int64(a)},
		{Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{base}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpFAdd, Dst: w, Src: [2]ir.Reg{v, v}},
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.LoadInterlock == 0 {
		t.Error("expected load interlock cycles for immediate consumer")
	}
	if met.FixedInterlock != 0 {
		t.Errorf("FixedInterlock = %d, want 0", met.FixedInterlock)
	}
}

func TestFixedInterlockAttribution(t *testing.T) {
	// fdiv followed by its consumer: a fixed-latency interlock.
	f := &ir.Func{Name: "fx"}
	x := f.NewReg(ir.RegFP)
	y := f.NewReg(ir.RegFP)
	z := f.NewReg(ir.RegFP)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpFMovi, Dst: x, FImm: 3},
		{Op: ir.OpFMovi, Dst: y, FImm: 2},
		{Op: ir.OpFDiv, Dst: z, Src: [2]ir.Reg{x, y}},
		{Op: ir.OpFAdd, Dst: z, Src: [2]ir.Reg{z, z}},
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.FixedInterlock < machine.LatFPDiv-1 {
		t.Errorf("FixedInterlock = %d, want >= %d", met.FixedInterlock, machine.LatFPDiv-1)
	}
	if met.LoadInterlock != 0 {
		t.Errorf("LoadInterlock = %d, want 0", met.LoadInterlock)
	}
	if got := m.fpRegs[z]; got != 3.0 {
		t.Errorf("z = %g, want 3.0", got)
	}
}

func TestNonBlockingLoadsOverlap(t *testing.T) {
	// Two independent loads to different lines followed by consumers:
	// their miss latencies must overlap, so total cycles are far less
	// than two serialized memory accesses.
	build := func(independent bool) int64 {
		f := &ir.Func{Name: "nb"}
		a := f.AddArray("a", 4096)
		base := f.NewReg(ir.RegInt)
		v1 := f.NewReg(ir.RegFP)
		v2 := f.NewReg(ir.RegFP)
		s := f.NewReg(ir.RegFP)
		b := f.NewBlock()
		b.Instrs = append(b.Instrs,
			&ir.Instr{Op: ir.OpLdA, Dst: base, Imm: int64(a)},
			&ir.Instr{Op: ir.OpLdF, Dst: v1, Src: [2]ir.Reg{base}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		)
		if independent {
			b.Instrs = append(b.Instrs,
				&ir.Instr{Op: ir.OpLdF, Dst: v2, Src: [2]ir.Reg{base}, Imm: 2048, Mem: &ir.MemRef{Array: a, Base: 0, Disp: 2048, Width: 8}},
				&ir.Instr{Op: ir.OpFAdd, Dst: s, Src: [2]ir.Reg{v1, v2}},
			)
		} else {
			// Serialize: consume v1 before issuing the second load.
			b.Instrs = append(b.Instrs,
				&ir.Instr{Op: ir.OpFAdd, Dst: s, Src: [2]ir.Reg{v1, v1}},
				&ir.Instr{Op: ir.OpLdF, Dst: v2, Src: [2]ir.Reg{base}, Imm: 2048, Mem: &ir.MemRef{Array: a, Base: 0, Disp: 2048, Width: 8}},
				&ir.Instr{Op: ir.OpFAdd, Dst: s, Src: [2]ir.Reg{v2, v2}},
			)
		}
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		m, err := New(f)
		if err != nil {
			t.Fatal(err)
		}
		met, err := m.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return met.Cycles
	}
	overlapped := build(true)
	serial := build(false)
	if overlapped >= serial {
		t.Errorf("overlapped loads took %d cycles, serialized %d: no overlap", overlapped, serial)
	}
	if serial-overlapped < cache.LatMem/2 {
		t.Errorf("overlap saved only %d cycles, expected close to a full miss", serial-overlapped)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	// Issue more independent missing loads than there are MSHRs; the
	// simulator must record MSHR stalls.
	f := &ir.Func{Name: "mshr"}
	a := f.AddArray("a", 64*1024)
	base := f.NewReg(ir.RegInt)
	b := f.NewBlock()
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpLdA, Dst: base, Imm: int64(a)})
	n := cache.MSHRs + 3
	for i := 0; i < n; i++ {
		v := f.NewReg(ir.RegFP)
		b.Instrs = append(b.Instrs, &ir.Instr{
			Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{base},
			Imm: int64(i * 2048),
			Mem: &ir.MemRef{Array: a, Base: 0, Disp: int64(i * 2048), Width: 8},
		})
	}
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.MSHRStall == 0 {
		t.Error("expected MSHR stalls with more misses than miss registers")
	}
}

func TestBranchPredictionLearns(t *testing.T) {
	// A loop branch is taken n-1 times; the bimodal predictor should
	// mispredict only a handful of times.
	f := buildSum(1000)
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.Branches != 1000 {
		t.Fatalf("branches = %d, want 1000", met.Branches)
	}
	if met.Mispredicts > 4 {
		t.Errorf("mispredicts = %d, want <= 4 for a loop branch", met.Mispredicts)
	}
}

func TestEdgeCallback(t *testing.T) {
	f := buildSum(10)
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[[2]int]int64{}
	if _, err := m.Run(func(b, s int) { counts[[2]int{b, s}]++ }); err != nil {
		t.Fatal(err)
	}
	if counts[[2]int{1, 0}] != 9 { // back edge taken 9 times
		t.Errorf("back edge count = %d, want 9", counts[[2]int{1, 0}])
	}
	if counts[[2]int{1, 1}] != 1 { // fallthrough to exit once
		t.Errorf("exit edge count = %d, want 1", counts[[2]int{1, 1}])
	}
}

func TestRunawayGuard(t *testing.T) {
	f := &ir.Func{Name: "loop"}
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{{Op: ir.OpBr, Target: 0}}
	b.Succs = []int{0}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstrs = 1000
	if _, err := m.Run(nil); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("runaway loop not caught: %v", err)
	}
}

func TestOutOfRangeAddressFails(t *testing.T) {
	f := &ir.Func{Name: "oob"}
	a := f.AddArray("a", 8)
	r := f.NewReg(ir.RegInt)
	v := f.NewReg(ir.RegFP)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpMovi, Dst: r, Imm: 1 << 40},
		{Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{r}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err == nil {
		t.Error("out-of-range address not detected")
	}
}

func TestSpillCountsAndAbsoluteAddressing(t *testing.T) {
	f := &ir.Func{Name: "spill"}
	slot := f.AddArray("spill", 16)
	f.Arrays[slot].Slot = true
	r := f.NewReg(ir.RegInt)
	r2 := f.NewReg(ir.RegInt)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpMovi, Dst: r, Imm: 42},
		{Op: ir.OpSt, Src: [2]ir.Reg{r, ir.NoReg}, Imm: 8, Spill: ir.SpillStore,
			Mem: &ir.MemRef{Array: slot, Base: 0, Disp: 8, Width: 8}},
		{Op: ir.OpLd, Dst: r2, Src: [2]ir.Reg{ir.NoReg}, Imm: 8, Spill: ir.SpillRestore,
			Mem: &ir.MemRef{Array: slot, Base: 0, Disp: 8, Width: 8}},
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.intRegs[r2] != 42 {
		t.Errorf("restored value = %d, want 42", m.intRegs[r2])
	}
	if met.SpillStores != 1 || met.SpillRestores != 1 {
		t.Errorf("spill counts = %d/%d, want 1/1", met.SpillStores, met.SpillRestores)
	}
}

func TestCmovSemantics(t *testing.T) {
	f := &ir.Func{Name: "cmov"}
	c := f.NewReg(ir.RegInt)
	a := f.NewReg(ir.RegInt)
	b1 := f.NewReg(ir.RegInt)
	blk := f.NewBlock()
	blk.Instrs = []*ir.Instr{
		{Op: ir.OpMovi, Dst: c, Imm: 0},
		{Op: ir.OpMovi, Dst: a, Imm: 1},
		{Op: ir.OpMovi, Dst: b1, Imm: 2},
		{Op: ir.OpCmovEq, Dst: a, Src: [2]ir.Reg{c, b1}}, // c==0, so a=2
		{Op: ir.OpCmovNe, Dst: b1, Src: [2]ir.Reg{c, a}}, // c==0, b1 stays 2
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.intRegs[a] != 2 || m.intRegs[b1] != 2 {
		t.Errorf("cmov results a=%d b=%d, want 2, 2", m.intRegs[a], m.intRegs[b1])
	}
}

func TestIssueWidthSpeedsUpParallelCode(t *testing.T) {
	// Independent integer work should approach W instructions per cycle.
	build := func() *ir.Func {
		f := &ir.Func{Name: "w"}
		b := f.NewBlock()
		for i := 0; i < 400; i++ {
			r := f.NewReg(ir.RegInt)
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpMovi, Dst: r, Imm: int64(i)})
		}
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		return f
	}
	run := func(w int) int64 {
		m, err := New(build())
		if err != nil {
			t.Fatal(err)
		}
		m.IssueWidth = w
		met, err := m.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return met.Cycles
	}
	c1, c2, c4 := run(1), run(2), run(4)
	if c2 >= c1 || c4 >= c2 {
		t.Errorf("widths 1/2/4 gave %d/%d/%d cycles; expected monotone improvement", c1, c2, c4)
	}
	// Cold-I-cache fetch stalls are width independent; the issue portion
	// (400 cycles at width 1) should halve at width 2 and halve again at
	// width 4.
	if c1-c2 < 150 {
		t.Errorf("width 2 saved only %d cycles; expected ~200", c1-c2)
	}
	if c2-c4 < 75 {
		t.Errorf("width 4 saved only %d cycles over width 2; expected ~100", c2-c4)
	}
}

func TestIssueWidthRespectsMemoryPortLimit(t *testing.T) {
	// A block of back-to-back independent loads cannot exceed one memory
	// op per cycle at width 2 (ports = width/2).
	f := &ir.Func{Name: "ports"}
	a := f.AddArray("a", 4096)
	base := f.NewReg(ir.RegInt)
	b := f.NewBlock()
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpLdA, Dst: base, Imm: int64(a)})
	const n = 64
	for i := 0; i < n; i++ {
		r := f.NewReg(ir.RegFP)
		b.Instrs = append(b.Instrs, &ir.Instr{
			Op: ir.OpLdF, Dst: r, Src: [2]ir.Reg{base}, Imm: int64(i % 4 * 8),
			Mem: &ir.MemRef{Array: a, Base: 0, Disp: int64(i % 4 * 8), Width: 8},
		})
	}
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	m.IssueWidth = 2
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.Cycles < n {
		t.Errorf("%d loads issued in %d cycles at width 2; memory port limit violated", n, met.Cycles)
	}
}

func TestIssueWidthDefaultMatchesSingleIssue(t *testing.T) {
	// Width 0 (unset) must behave exactly like width 1 — the paper's model.
	fA := buildSum(200)
	mA, err := New(fA)
	if err != nil {
		t.Fatal(err)
	}
	metA, err := mA.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	fB := buildSum(200)
	mB, err := New(fB)
	if err != nil {
		t.Fatal(err)
	}
	mB.IssueWidth = 1
	metB, err := mB.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if metA.Cycles != metB.Cycles || metA.LoadInterlock != metB.LoadInterlock {
		t.Errorf("default width diverges from width 1: %v vs %v", metA, metB)
	}
}

// TestCycleAccountingIdentity pins the simulator's bookkeeping: at issue
// width 1 every cycle is either an issue slot or belongs to exactly one
// stall bucket, so the buckets must sum to the total.
func TestCycleAccountingIdentity(t *testing.T) {
	f := buildSum(500)
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := met.Instrs + met.LoadInterlock + met.FixedInterlock +
		met.FetchStall + met.BranchStall + met.StoreStall
	if met.Cycles != sum {
		t.Errorf("cycles = %d but buckets sum to %d", met.Cycles, sum)
	}
}

func TestPrefetchFillsCacheWithoutStalling(t *testing.T) {
	// prefetch; spacer work; load: the load must be faster than without
	// the prefetch, and the prefetch itself must never stall.
	build := func(withPF bool) (int64, int64) {
		f := &ir.Func{Name: "pf"}
		a := f.AddArray("a", 4096)
		base := f.NewReg(ir.RegInt)
		v := f.NewReg(ir.RegFP)
		w := f.NewReg(ir.RegFP)
		b := f.NewBlock()
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpLdA, Dst: base, Imm: int64(a)})
		if withPF {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpPrefetch, Src: [2]ir.Reg{base},
				Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}})
		}
		for k := 0; k < 60; k++ {
			r := f.NewReg(ir.RegInt)
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpMovi, Dst: r, Imm: int64(k)})
		}
		b.Instrs = append(b.Instrs,
			&ir.Instr{Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{base}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
			&ir.Instr{Op: ir.OpFAdd, Dst: w, Src: [2]ir.Reg{v, v}},
			&ir.Instr{Op: ir.OpRet})
		m, err := New(f)
		if err != nil {
			t.Fatal(err)
		}
		met, err := m.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return met.Cycles, met.LoadInterlock
	}
	cpf, ilpf := build(true)
	cnp, ilnp := build(false)
	if cpf >= cnp {
		t.Errorf("prefetch did not help: %d vs %d cycles", cpf, cnp)
	}
	if ilpf >= ilnp {
		t.Errorf("prefetch did not reduce load interlocks: %d vs %d", ilpf, ilnp)
	}
}

func TestPrefetchInFlightVisibleToDemandLoad(t *testing.T) {
	// A demand load issued immediately after the prefetch must wait for
	// the in-flight fill (not get a magic 2-cycle hit), but also not pay
	// the full miss again.
	f := &ir.Func{Name: "pf2"}
	a := f.AddArray("a", 4096)
	base := f.NewReg(ir.RegInt)
	v := f.NewReg(ir.RegFP)
	w := f.NewReg(ir.RegFP)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpLdA, Dst: base, Imm: int64(a)},
		{Op: ir.OpPrefetch, Src: [2]ir.Reg{base}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{base}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpFAdd, Dst: w, Src: [2]ir.Reg{v, v}},
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The consumer must stall close to the full memory latency (the fill
	// was started only one cycle earlier).
	if met.LoadInterlock < int64(cache.LatMem)/2 {
		t.Errorf("in-flight fill ignored: only %d interlock cycles", met.LoadInterlock)
	}
}

func TestPrefetchOutOfRangeIsDropped(t *testing.T) {
	f := &ir.Func{Name: "pf3"}
	a := f.AddArray("a", 64)
	r := f.NewReg(ir.RegInt)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpMovi, Dst: r, Imm: 1 << 40},
		{Op: ir.OpPrefetch, Src: [2]ir.Reg{r}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatalf("out-of-range prefetch faulted: %v", err)
	}
	if met.Prefetches != 1 {
		t.Errorf("prefetch not counted: %d", met.Prefetches)
	}
}

func TestWAWStallOnPendingLoad(t *testing.T) {
	// Overwriting a register whose load is still in flight must stall
	// (in-order WAW hazard) and attribute the wait to the load.
	f := &ir.Func{Name: "waw"}
	a := f.AddArray("a", 4096)
	base := f.NewReg(ir.RegInt)
	v := f.NewReg(ir.RegFP)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.OpLdA, Dst: base, Imm: int64(a)},
		{Op: ir.OpLdF, Dst: v, Src: [2]ir.Reg{base}, Mem: &ir.MemRef{Array: a, Base: 0, Width: 8}},
		{Op: ir.OpFMovi, Dst: v, FImm: 1}, // WAW with the in-flight load
		{Op: ir.OpRet},
	}
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.LoadInterlock == 0 {
		t.Error("WAW on a pending load did not stall")
	}
	if m.fpRegs[v] != 1 {
		t.Errorf("final value = %g, want 1 (program order)", m.fpRegs[v])
	}
}
