package sim

// The reference stepper: the original *ir.Instr-walking interpreter the
// predecoded fast core (decode.go) was derived from. It executes straight
// off the IR — a map lookup per fetch for the instruction's code address,
// closure-based operand fetch in exec — and is kept precisely because it
// is slow and simple: the differential tests run both cores over the same
// programs and require bit-identical metrics, hierarchy counters, memory
// images and error strings. Select it with Machine.Reference.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/machine"
)

// ensureCodeAddr builds the reference stepper's instruction-address map on
// first use. Addresses are assigned exactly as decode does: block order,
// machine.InstrBytes apart, starting at the code-segment base.
func (m *Machine) ensureCodeAddr() {
	if m.codeAddr != nil {
		return
	}
	m.codeAddr = make(map[*ir.Instr]uint64, m.fn.NumInstrs())
	code := uint64(64 * cache.PageSize) // code segment far from data
	for _, b := range m.fn.Blocks {
		for _, in := range b.Instrs {
			m.codeAddr[in] = code
			code += machine.InstrBytes
		}
	}
}

// runReference executes the function with the original stepper. Structure
// and cycle accounting are the model the fast core mirrors statement for
// statement.
func (m *Machine) runReference(met *Metrics, edges func(block, succIdx int), maxInstrs int64) (*Metrics, error) {
	m.ensureCodeAddr()
	var cycle int64
	bid := m.fn.Entry
	for {
		blk := m.fn.Blocks[bid]
		taken := false
		done := false
		for _, in := range blk.Instrs {
			if met.Instrs >= maxInstrs {
				return met, fmt.Errorf("sim: %s exceeded %d instructions (infinite loop?)", m.fn.Name, maxInstrs)
			}
			c, t, d, err := m.step(in, cycle, met)
			if err != nil {
				return met, err
			}
			cycle = c
			if t || d {
				taken, done = t, d
				break
			}
		}
		met.Cycles = cycle
		if done {
			return met, nil
		}
		var next int
		switch {
		case len(blk.Succs) == 0:
			return met, fmt.Errorf("sim: %s b%d has no successor and no ret", m.fn.Name, bid)
		case taken:
			next = blk.Succs[0]
			if edges != nil {
				edges(bid, 0)
			}
		case blk.Term() != nil && blk.Term().Op.IsCondBranch():
			next = blk.Succs[1]
			if edges != nil {
				edges(bid, 1)
			}
		default:
			next = blk.Succs[0]
			if edges != nil {
				edges(bid, 0)
			}
		}
		bid = next
	}
}

// step executes one instruction starting at the given cycle and returns
// the cycle after issue, whether a branch was taken, and whether the
// function returned.
func (m *Machine) step(in *ir.Instr, cycle int64, met *Metrics) (int64, bool, bool, error) {
	// Instruction fetch: I-TLB and I-cache.
	if fs := m.hier.FetchLatency(m.codeAddr[in]); fs > 0 {
		met.FetchStall += int64(fs)
		cycle += int64(fs)
		m.newCycle()
	}

	// Register interlocks: wait for sources (and destination, covering
	// write-after-write on a pending load and the read of Dst by
	// conditional moves).
	stallUntil := cycle
	stallOnLoad := false
	consider := func(r ir.Reg) {
		if r == ir.NoReg {
			return
		}
		if t := m.ready[r]; t > stallUntil {
			stallUntil = t
			stallOnLoad = m.isLoad[r]
		} else if t == stallUntil && t > cycle && m.isLoad[r] {
			stallOnLoad = true
		}
	}
	consider(in.Src[0])
	consider(in.Src[1])
	consider(in.Dst)
	if stallUntil > cycle {
		d := stallUntil - cycle
		if stallOnLoad {
			met.LoadInterlock += d
		} else {
			met.FixedInterlock += d
		}
		cycle = stallUntil
		m.newCycle()
	}

	issue := cycle
	cycle = m.advanceIssue(in, cycle)

	met.Instrs++
	met.ByClass[ir.ClassOf(in.Op)]++
	switch in.Spill {
	case ir.SpillStore:
		met.SpillStores++
	case ir.SpillRestore:
		met.SpillRestores++
	}

	switch {
	case in.Op == ir.OpPrefetch:
		met.Prefetches++
		if addr, err := m.effAddr(in); err == nil {
			// Non-faulting: a bad address simply drops the hint. A hint
			// with no free miss register is dropped too, rather than
			// stalling the pipe.
			if m.prefetch(addr, issue) {
				met.PrefetchFills++
			}
		}
		return cycle, false, false, nil

	case in.Op.IsLoad():
		addr, err := m.effAddr(in)
		if err != nil {
			return cycle, false, false, err
		}
		lat, l1hit, mshr := m.loadAccess(addr, issue)
		met.Loads++
		if l1hit {
			met.L1DHits++
		}
		if mshr > 0 {
			// All miss registers busy: the load stalls at issue until
			// one frees. This is load-induced, so it counts as load
			// interlock.
			met.LoadInterlock += mshr
			met.MSHRStall += mshr
			cycle += mshr
			issue += mshr
			m.newCycle()
		}
		var v int64
		if addr+8 <= uint64(len(m.mem)) {
			v = int64(binary.LittleEndian.Uint64(m.mem[addr:]))
		}
		if in.Op == ir.OpLdF {
			m.fpRegs[in.Dst] = math.Float64frombits(uint64(v))
		} else {
			m.intRegs[in.Dst] = v
		}
		m.ready[in.Dst] = issue + int64(lat)
		m.isLoad[in.Dst] = true
		return cycle, false, false, nil

	case in.Op.IsStore():
		addr, err := m.effAddr(in)
		if err != nil {
			return cycle, false, false, err
		}
		if st := m.hier.Store(addr); st > 0 {
			met.StoreStall += int64(st)
			cycle += int64(st)
			m.newCycle()
		}
		if addr+8 <= uint64(len(m.mem)) {
			var bits uint64
			if in.Op == ir.OpStF {
				bits = math.Float64bits(m.fpRegs[in.Src[0]])
			} else {
				bits = uint64(m.intRegs[in.Src[0]])
			}
			binary.LittleEndian.PutUint64(m.mem[addr:], bits)
		}
		return cycle, false, false, nil

	case in.Op.IsBranch():
		if in.Op == ir.OpRet {
			return cycle, false, true, nil
		}
		taken := true
		if in.Op.IsCondBranch() {
			taken = condTaken(in.Op, m.intRegs[in.Src[0]])
			met.Branches++
			if m.predict(in) != taken {
				met.Mispredicts++
				met.BranchStall += machine.MispredictPenalty
				cycle += machine.MispredictPenalty
				m.newCycle()
			}
			m.train(in, taken)
		}
		return cycle, taken, false, nil

	default:
		m.exec(in)
		if in.Dst != ir.NoReg {
			m.ready[in.Dst] = issue + int64(machine.Latency(in.Op))
			m.isLoad[in.Dst] = false
		}
		return cycle, false, false, nil
	}
}

// advanceIssue is the reference stepper's issue-group accounting (the
// fast core precomputes the operands and calls advanceIssueAt).
func (m *Machine) advanceIssue(in *ir.Instr, cycle int64) int64 {
	if m.IssueWidth <= 1 {
		return cycle + 1
	}
	cls := ir.ClassOf(in.Op)
	return m.advanceIssueAt(in.Op.IsMem(),
		cls == ir.ClassFPShort || cls == ir.ClassFPLong, in.Op.IsBranch(), cycle)
}

// exec evaluates a register-only instruction.
func (m *Machine) exec(in *ir.Instr) {
	ints := m.intRegs
	fps := m.fpRegs
	src1 := func() int64 {
		if in.UseImm {
			return in.Imm
		}
		return ints[in.Src[1]]
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.OpMovi:
		ints[in.Dst] = in.Imm
	case ir.OpMov:
		ints[in.Dst] = ints[in.Src[0]]
	case ir.OpAdd:
		ints[in.Dst] = ints[in.Src[0]] + src1()
	case ir.OpSub:
		ints[in.Dst] = ints[in.Src[0]] - src1()
	case ir.OpMul:
		ints[in.Dst] = ints[in.Src[0]] * src1()
	case ir.OpAnd:
		ints[in.Dst] = ints[in.Src[0]] & src1()
	case ir.OpOr:
		ints[in.Dst] = ints[in.Src[0]] | src1()
	case ir.OpXor:
		ints[in.Dst] = ints[in.Src[0]] ^ src1()
	case ir.OpSll:
		ints[in.Dst] = ints[in.Src[0]] << uint(src1()&63)
	case ir.OpSrl:
		ints[in.Dst] = int64(uint64(ints[in.Src[0]]) >> uint(src1()&63))
	case ir.OpSra:
		ints[in.Dst] = ints[in.Src[0]] >> uint(src1()&63)
	case ir.OpCmpEq:
		ints[in.Dst] = b2i(ints[in.Src[0]] == src1())
	case ir.OpCmpLt:
		ints[in.Dst] = b2i(ints[in.Src[0]] < src1())
	case ir.OpCmpLe:
		ints[in.Dst] = b2i(ints[in.Src[0]] <= src1())
	case ir.OpS4Add:
		ints[in.Dst] = ints[in.Src[0]]*4 + ints[in.Src[1]]
	case ir.OpS8Add:
		ints[in.Dst] = ints[in.Src[0]]*8 + ints[in.Src[1]]
	case ir.OpLdA:
		ints[in.Dst] = int64(m.arrayBase[in.Imm])
	case ir.OpCmovEq:
		if ints[in.Src[0]] == 0 {
			ints[in.Dst] = ints[in.Src[1]]
		}
	case ir.OpCmovNe:
		if ints[in.Src[0]] != 0 {
			ints[in.Dst] = ints[in.Src[1]]
		}
	case ir.OpFMovi:
		fps[in.Dst] = in.FImm
	case ir.OpFMov:
		fps[in.Dst] = fps[in.Src[0]]
	case ir.OpFAdd:
		fps[in.Dst] = fps[in.Src[0]] + fps[in.Src[1]]
	case ir.OpFSub:
		fps[in.Dst] = fps[in.Src[0]] - fps[in.Src[1]]
	case ir.OpFMul:
		fps[in.Dst] = fps[in.Src[0]] * fps[in.Src[1]]
	case ir.OpFDiv:
		fps[in.Dst] = fps[in.Src[0]] / fps[in.Src[1]]
	case ir.OpFSqrt:
		fps[in.Dst] = math.Sqrt(fps[in.Src[0]])
	case ir.OpFNeg:
		fps[in.Dst] = -fps[in.Src[0]]
	case ir.OpFAbs:
		fps[in.Dst] = math.Abs(fps[in.Src[0]])
	case ir.OpFCmpEq:
		ints[in.Dst] = b2i(fps[in.Src[0]] == fps[in.Src[1]])
	case ir.OpFCmpLt:
		ints[in.Dst] = b2i(fps[in.Src[0]] < fps[in.Src[1]])
	case ir.OpFCmpLe:
		ints[in.Dst] = b2i(fps[in.Src[0]] <= fps[in.Src[1]])
	case ir.OpCvtIF:
		fps[in.Dst] = float64(ints[in.Src[0]])
	case ir.OpCvtFI:
		ints[in.Dst] = int64(fps[in.Src[0]])
	case ir.OpFCmovEq:
		if ints[in.Src[0]] == 0 {
			fps[in.Dst] = fps[in.Src[1]]
		}
	case ir.OpFCmovNe:
		if ints[in.Src[0]] != 0 {
			fps[in.Dst] = fps[in.Src[1]]
		}
	}
}

func (m *Machine) predictorIndex(in *ir.Instr) uint64 {
	return (m.codeAddr[in] / machine.InstrBytes) & (1<<predictorBits - 1)
}

func (m *Machine) predict(in *ir.Instr) bool {
	return m.predictor[m.predictorIndex(in)] >= 2
}

func (m *Machine) train(in *ir.Instr, taken bool) {
	i := m.predictorIndex(in)
	c := m.predictor[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	m.predictor[i] = c
}
