package sim

import (
	"reflect"
	"testing"

	"repro/internal/ir"
)

func TestMetricsInterlock(t *testing.T) {
	m := &Metrics{LoadInterlock: 7, FixedInterlock: 5}
	if got := m.Interlock(); got != 12 {
		t.Errorf("Interlock() = %d, want 12", got)
	}
}

func TestMetricsLoadInterlockShare(t *testing.T) {
	m := &Metrics{Cycles: 200, LoadInterlock: 50}
	if got := m.LoadInterlockShare(); got != 0.25 {
		t.Errorf("LoadInterlockShare() = %v, want 0.25", got)
	}
	// The zero-cycles guard: an empty run must report 0, not NaN.
	var zero Metrics
	if got := zero.LoadInterlockShare(); got != 0 {
		t.Errorf("zero-cycle LoadInterlockShare() = %v, want 0", got)
	}
}

func TestMetricsL1DHitRate(t *testing.T) {
	m := &Metrics{Loads: 10, L1DHits: 9}
	if got := m.L1DHitRate(); got != 0.9 {
		t.Errorf("L1DHitRate() = %v, want 0.9", got)
	}
	var zero Metrics
	if got := zero.L1DHitRate(); got != 0 {
		t.Errorf("zero-load L1DHitRate() = %v, want 0", got)
	}
}

// TestMetricsEachCoversEveryField proves the observability bridge cannot
// silently fall behind the struct: summing Each's emissions over a
// metrics value where every field is distinct must account for every
// int64 in the struct (ByClass entries included).
func TestMetricsEachCoversEveryField(t *testing.T) {
	m := &Metrics{}
	// Assign 1, 2, 3, ... to every int64 field reflectively.
	v := reflect.ValueOf(m).Elem()
	next := int64(1)
	var fill func(reflect.Value)
	fill = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Int64:
			v.SetInt(next)
			next++
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				fill(v.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				fill(v.Field(i))
			}
		}
	}
	fill(v)
	wantSum := next * (next - 1) / 2 // 1 + 2 + ... + (next-1)

	var gotSum int64
	seen := map[string]bool{}
	m.Each(func(name string, val int64) {
		if seen[name] {
			t.Errorf("Each emitted %q twice", name)
		}
		seen[name] = true
		gotSum += val
	})
	if gotSum != wantSum {
		t.Errorf("Each emissions sum to %d, struct fields sum to %d — a field is missing from Each",
			gotSum, wantSum)
	}
	for i := 0; i < int(ir.NumClasses); i++ {
		name := "instrs/" + ir.Class(i).String()
		if !seen[name] {
			t.Errorf("Each missing per-class counter %q", name)
		}
	}
}
