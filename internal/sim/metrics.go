package sim

import (
	"fmt"

	"repro/internal/ir"
)

// Metrics collects the measurements the paper reports (Section 4.3):
// total cycles, interlock cycles split between loads and fixed-latency
// instructions, and dynamic instruction counts per class including spill
// and restore instructions.
type Metrics struct {
	// Cycles is the total simulated execution time.
	Cycles int64
	// Instrs is the dynamic instruction count.
	Instrs int64
	// ByClass breaks Instrs down per instruction class.
	ByClass [ir.NumClasses]int64
	// SpillStores and SpillRestores count register-allocator-inserted
	// memory traffic (also included in ByClass load/store counts).
	SpillStores, SpillRestores int64

	// LoadInterlock counts cycles stalled waiting for a load result
	// (including stalls for a free outstanding-miss register).
	LoadInterlock int64
	// FixedInterlock counts cycles stalled waiting for a fixed-latency
	// (non-load) result.
	FixedInterlock int64
	// MSHRStall is the subset of LoadInterlock spent waiting for a free
	// miss register in the lockup-free cache.
	MSHRStall int64
	// FetchStall counts instruction-fetch cycles (I-cache/ITLB misses).
	FetchStall int64
	// BranchStall counts branch misprediction penalty cycles.
	BranchStall int64
	// StoreStall counts store-side stalls (DTLB refills).
	StoreStall int64

	// Branches and Mispredicts count conditional branch outcomes.
	Branches, Mispredicts int64
	// Prefetches counts executed software prefetch hints; Prefetches
	// dropped for want of a free miss register are counted too.
	Prefetches int64
	// PrefetchFills counts the prefetch hints that actually started a
	// cache fill — the rest were dropped (line already resident or in
	// flight, no free miss register, or a bad address). Fills are
	// accounted under the hierarchy's dedicated prefetch counter, so the
	// L1D hit/miss counters keep describing demand loads only.
	PrefetchFills int64
	// Loads and L1DHits count data-cache behaviour observed by loads.
	Loads, L1DHits int64
}

// Interlock returns total interlock cycles (load + fixed).
func (m *Metrics) Interlock() int64 { return m.LoadInterlock + m.FixedInterlock }

// LoadInterlockShare returns load interlock cycles as a fraction of total
// cycles, the paper's headline per-scheduler statistic.
func (m *Metrics) LoadInterlockShare() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.LoadInterlock) / float64(m.Cycles)
}

// L1DHitRate returns the fraction of loads that hit in the L1 data cache.
func (m *Metrics) L1DHitRate() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.L1DHits) / float64(m.Loads)
}

// Add accumulates o into m (used when a program runs several kernels).
func (m *Metrics) Add(o *Metrics) {
	m.Cycles += o.Cycles
	m.Instrs += o.Instrs
	for i := range m.ByClass {
		m.ByClass[i] += o.ByClass[i]
	}
	m.SpillStores += o.SpillStores
	m.SpillRestores += o.SpillRestores
	m.LoadInterlock += o.LoadInterlock
	m.FixedInterlock += o.FixedInterlock
	m.MSHRStall += o.MSHRStall
	m.FetchStall += o.FetchStall
	m.BranchStall += o.BranchStall
	m.StoreStall += o.StoreStall
	m.Branches += o.Branches
	m.Mispredicts += o.Mispredicts
	m.Prefetches += o.Prefetches
	m.PrefetchFills += o.PrefetchFills
	m.Loads += o.Loads
	m.L1DHits += o.L1DHits
}

// Each calls f with every scalar metric as a (name, value) pair, the
// bridge between the simulator's fixed struct and the observability
// layer's name-keyed counter registry (internal/obs). Names are stable:
// per-class dynamic counts appear as "instrs/<class>" using the
// ir.Class names.
func (m *Metrics) Each(f func(name string, v int64)) {
	f("cycles", m.Cycles)
	f("instrs", m.Instrs)
	for i := range m.ByClass {
		f("instrs/"+ir.Class(i).String(), m.ByClass[i])
	}
	f("spill_stores", m.SpillStores)
	f("spill_restores", m.SpillRestores)
	f("load_interlock", m.LoadInterlock)
	f("fixed_interlock", m.FixedInterlock)
	f("mshr_stall", m.MSHRStall)
	f("fetch_stall", m.FetchStall)
	f("branch_stall", m.BranchStall)
	f("store_stall", m.StoreStall)
	f("branches", m.Branches)
	f("mispredicts", m.Mispredicts)
	f("prefetches", m.Prefetches)
	f("prefetch_fills", m.PrefetchFills)
	f("loads", m.Loads)
	f("l1d_hits", m.L1DHits)
}

func (m *Metrics) String() string {
	return fmt.Sprintf(
		"cycles=%d instrs=%d loadIL=%d fixedIL=%d fetch=%d mispredict=%d spills=%d+%d l1d=%.1f%%",
		m.Cycles, m.Instrs, m.LoadInterlock, m.FixedInterlock,
		m.FetchStall, m.BranchStall, m.SpillStores, m.SpillRestores,
		100*m.L1DHitRate())
}
