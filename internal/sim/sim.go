// Package sim is an execution-driven simulator for the low-level IR,
// modelling the DEC Alpha 21164 as the paper does (Section 4.3): a
// single-issue, in-order pipeline with non-blocking loads (a lockup-free
// first-level data cache with a bounded number of outstanding misses), a
// three-level cache hierarchy, instruction and data TLBs, and bimodal
// branch prediction. The simulator both executes the program (registers
// and memory carry real values) and accounts every stall cycle as either a
// load interlock or a fixed-latency interlock — the paper's key metric
// split.
//
// Two steppers share the machine model. The default is the predecoded
// fast core (decode.go): New decodes each instruction once into a flat
// []decoded slice that Run walks with an integer PC — no map lookups, no
// pointer-chasing into ir.Instr, no per-step closures, and zero heap
// allocations per instruction in steady state. The original
// *ir.Instr-walking stepper (reference.go) stays available behind the
// Reference option; the two produce bit-identical metrics, memory images
// and hierarchy counters, which the differential tests enforce.
package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/ir"
)

// predictorBits sizes the bimodal branch predictor (2^11 two-bit counters).
const predictorBits = 11

// Machine is a simulation instance for one ir.Func. Create it with New,
// initialise array contents through ArrayBase/Memory, then call Run.
// After a run the machine can be rewound for another function (or the
// same one) with Reset instead of being reallocated.
type Machine struct {
	fn   *ir.Func
	hier *cache.Hierarchy

	mem       []byte
	arrayBase []uint64 // base address per fn.Arrays entry

	intRegs []int64
	fpRegs  []float64

	ready  []int64 // cycle at which each register's value is available
	isLoad []bool  // producer of the register's pending value was a load

	predictor []uint8

	// Predecoded program (decode.go): the flat instruction stream and its
	// per-block index, rebuilt whenever the machine is pointed at a new
	// function.
	dec    []decoded
	blocks []decBlock

	// codeAddr is the reference stepper's instruction-address map, built
	// lazily on the first reference run (the fast core carries the
	// precomputed address in each decoded entry instead).
	codeAddr map[*ir.Instr]uint64

	// lastFetchLine is the I-cache line of the previous instruction fetch:
	// fetches that stay on it skip the hierarchy walk (see runFast).
	lastFetchLine uint64

	// outstanding misses in the lockup-free data cache
	missLine []uint64
	missDone []int64

	// MaxInstrs bounds execution as a runaway guard; Run fails when
	// exceeded. Zero means the default (2^40).
	MaxInstrs int64
	// IssueWidth is the number of instructions the core may issue per
	// cycle (default 1, the paper's model). Widths 2 and 4 model the
	// superscalar processors the paper names as future work: an issue
	// group ends at a taken branch, at a data stall, or when per-cycle
	// functional-unit limits are reached (memory and floating-point
	// pipes are half the width, as on the 21164).
	IssueWidth int
	// Reference selects the original *ir.Instr-walking stepper instead of
	// the predecoded fast core, for differential testing. Both produce
	// bit-identical metrics and memory images.
	Reference bool

	issuedThisCycle int
	memThisCycle    int
	fpThisCycle     int
}

// New prepares a simulation of fn with a fresh memory hierarchy. Array
// storage is laid out contiguously, each array aligned to a cache line and
// padded by a guard region so speculative loads cannot escape simulated
// memory (the paper aligns arrays on cache-line boundaries).
func New(fn *ir.Func) (*Machine, error) {
	if err := fn.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		hier:      cache.NewHierarchy(),
		predictor: make([]uint8, 1<<predictorBits),
		// The miss registers never exceed MSHRs entries (loadAccess evicts
		// at the bound, prefetch drops at it), so sizing to the bound once
		// keeps the hot loop allocation-free.
		missDone: make([]int64, 0, cache.MSHRs),
		missLine: make([]uint64, 0, cache.MSHRs),
	}
	m.init(fn)
	return m, nil
}

// init points the machine at fn: array layout, register file sizing and
// predecoding. Existing slices are reused when large enough. The caller
// guarantees fn is valid (New validates; Reset documents the contract).
func (m *Machine) init(fn *ir.Func) {
	m.fn = fn
	const guard = 4 * cache.LineSize
	// Leave a null page so address 0 stays out of use, and start data on
	// a fresh page.
	addr := uint64(cache.PageSize)
	if cap(m.arrayBase) < len(fn.Arrays) {
		m.arrayBase = make([]uint64, len(fn.Arrays))
	}
	m.arrayBase = m.arrayBase[:len(fn.Arrays)]
	for i, a := range fn.Arrays {
		m.arrayBase[i] = addr
		sz := (a.Size + cache.LineSize - 1) / cache.LineSize * cache.LineSize
		addr += uint64(sz) + guard
	}
	if uint64(cap(m.mem)) >= addr {
		m.mem = m.mem[:addr]
		clear(m.mem)
	} else {
		m.mem = make([]byte, addr)
	}

	n := fn.NumRegs
	if n < 65 {
		n = 65 // physical register space after allocation
	}
	m.intRegs = growI64(m.intRegs, n)
	m.fpRegs = growF64(m.fpRegs, n)
	m.ready = growI64(m.ready, n)
	m.isLoad = growBool(m.isLoad, n)

	m.decode()
	m.codeAddr = nil // rebuilt lazily if the reference stepper runs
}

// Reset rewinds the machine for a fresh run of fn, reusing the memory
// image, register file, predictor, hierarchy and decoded stream instead
// of reallocating them; when fn is the machine's current function the
// predecoded stream is kept as-is. The caller must pass a valid function
// (one that fn.Validate accepts — e.g. pipeline output, which New already
// validated on the pool's first build); Reset does not re-validate.
// MaxInstrs, IssueWidth and Reference revert to their defaults.
func (m *Machine) Reset(fn *ir.Func) {
	if fn != m.fn {
		m.init(fn)
	} else {
		clear(m.mem)
		clear(m.intRegs)
		clear(m.fpRegs)
		clear(m.ready)
		clear(m.isLoad)
	}
	clear(m.predictor)
	m.hier.Reset()
	m.missDone = m.missDone[:0]
	m.missLine = m.missLine[:0]
	m.MaxInstrs, m.IssueWidth, m.Reference = 0, 0, false
	m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
}

// Invalidate marks the machine's cached per-function state (the
// predecoded stream) stale, forcing the next Reset to fully
// re-initialise even when handed the same *ir.Func pointer. Callers
// whose function is mutated in place after the run must call this before
// returning the machine to a Pool — the profiler does, because trace
// scheduling rewrites the profiled function — otherwise a later pooled
// run on the same pointer would replay the pre-mutation code. The
// machine cannot Run again until Reset.
func (m *Machine) Invalidate() { m.fn = nil }

// growI64 returns a zeroed int64 slice of length n, reusing s's storage
// when it is large enough.
func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// ArrayBase returns the simulated base address of array id.
func (m *Machine) ArrayBase(id int) uint64 { return m.arrayBase[id] }

// WriteF64 stores v at byte offset off within array id, for initialising
// inputs before Run.
func (m *Machine) WriteF64(id int, off int64, v float64) {
	binary.LittleEndian.PutUint64(m.mem[m.arrayBase[id]+uint64(off):], math.Float64bits(v))
}

// ReadF64 loads the float64 at byte offset off within array id, for
// checking outputs after Run.
func (m *Machine) ReadF64(id int, off int64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.mem[m.arrayBase[id]+uint64(off):]))
}

// WriteI64 stores v at byte offset off within array id.
func (m *Machine) WriteI64(id int, off int64, v int64) {
	binary.LittleEndian.PutUint64(m.mem[m.arrayBase[id]+uint64(off):], uint64(v))
}

// ReadI64 loads the int64 at byte offset off within array id.
func (m *Machine) ReadI64(id int, off int64) int64 {
	return int64(binary.LittleEndian.Uint64(m.mem[m.arrayBase[id]+uint64(off):]))
}

// Hierarchy exposes the memory system for inspecting hit/miss counters.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Run executes the function to completion and returns its metrics.
// EdgeCounts, when non-nil, receives per-(block,successor-index) traversal
// counts for the profiler.
func (m *Machine) Run(edges func(block, succIdx int)) (*Metrics, error) {
	if err := faultinject.Hit("sim/run", m.fn.Name); err != nil {
		return nil, err
	}
	met := &Metrics{}
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	if m.IssueWidth == 0 {
		m.IssueWidth = 1
	}
	m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
	if m.Reference {
		return m.runReference(met, edges, maxInstrs)
	}
	return m.runFast(met, edges, maxInstrs)
}

// advanceIssueAt accounts one instruction against the current issue group
// and returns the cycle at which the *next* instruction may issue. At
// width 1 every instruction starts a new cycle (the paper's model); at
// wider widths instructions share cycles until the group fills, a
// functional-unit class saturates, or a branch ends the group.
func (m *Machine) advanceIssueAt(isMem, isFP, isBranch bool, cycle int64) int64 {
	w := m.IssueWidth
	if w <= 1 {
		return cycle + 1
	}
	half := (w + 1) / 2
	if isMem {
		m.memThisCycle++
	}
	if isFP {
		m.fpThisCycle++
	}
	m.issuedThisCycle++
	if m.issuedThisCycle >= w || m.memThisCycle >= half ||
		m.fpThisCycle >= half || isBranch {
		m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
		return cycle + 1
	}
	return cycle
}

// newCycle resets issue-group state when a stall forces a cycle change.
func (m *Machine) newCycle() {
	m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
}

// loadAccess performs the data-side access, managing the lockup-free
// cache's outstanding-miss registers. It returns the load-to-use latency,
// whether the access hit in L1, and any stall waiting for a free miss
// register.
func (m *Machine) loadAccess(addr uint64, issue int64) (lat int, l1hit bool, mshrStall int64) {
	lat, l1hit = m.hier.LoadLatency(addr)
	line := addr / cache.LineSize
	if l1hit {
		// The line may still be in flight from a prefetch or an earlier
		// miss: the demand load completes when the fill does.
		for i, done := range m.missDone {
			if m.missLine[i] == line && done > issue {
				if d := int(done - issue); d > lat {
					lat = d
				}
			}
		}
		return lat, true, 0
	}
	// Merge with an outstanding miss to the same line.
	live := m.missDone[:0]
	liveLines := m.missLine[:0]
	var merged int64 = -1
	for i, done := range m.missDone {
		if done > issue {
			live = append(live, done)
			liveLines = append(liveLines, m.missLine[i])
			if m.missLine[i] == line {
				merged = done
			}
		}
	}
	m.missDone, m.missLine = live, liveLines
	if merged >= 0 {
		if d := merged - issue; d < int64(lat) {
			lat = int(d)
			if lat < cache.LatL1 {
				lat = cache.LatL1
			}
		}
		return lat, false, 0
	}
	if len(m.missDone) >= cache.MSHRs {
		// Wait for the earliest outstanding miss to complete.
		min := m.missDone[0]
		minI := 0
		for i, d := range m.missDone {
			if d < min {
				min, minI = d, i
			}
		}
		mshrStall = min - issue
		if mshrStall < 0 {
			mshrStall = 0
		}
		issue = min
		m.missDone = append(m.missDone[:minI], m.missDone[minI+1:]...)
		m.missLine = append(m.missLine[:minI], m.missLine[minI+1:]...)
	}
	m.missDone = append(m.missDone, issue+int64(lat))
	m.missLine = append(m.missLine, line)
	return lat, false, mshrStall
}

// prefetch starts a cache fill for addr without blocking: on an L1 hit
// nothing happens; on a miss with a free miss register the fill is
// registered so later demand loads to the line complete with it; with all
// miss registers busy the hint is dropped. It reports whether a fill was
// actually started. Completed miss registers are compacted away first so
// the register file stays within its MSHRs bound (stale entries are
// invisible to every check, so compacting here changes no outcome).
func (m *Machine) prefetch(addr uint64, issue int64) bool {
	line := addr / cache.LineSize
	live := m.missDone[:0]
	liveLines := m.missLine[:0]
	inFlight := false
	for i, done := range m.missDone {
		if done > issue {
			live = append(live, done)
			liveLines = append(liveLines, m.missLine[i])
			if m.missLine[i] == line {
				inFlight = true
			}
		}
	}
	m.missDone, m.missLine = live, liveLines
	if inFlight {
		return false // already in flight
	}
	if m.hier.L1D.Probe(addr) {
		return false // already resident
	}
	if len(m.missDone) >= cache.MSHRs {
		return false // dropped: no free miss register
	}
	// The line is not resident (Probe above), so this is always a fill
	// from L2 or below; it is accounted as a prefetch fill, not a demand
	// miss, keeping the L1D hit/miss counters meaningful for loads.
	lat := m.hier.PrefetchFill(addr)
	m.missDone = append(m.missDone, issue+int64(lat))
	m.missLine = append(m.missLine, line)
	return true
}

// effAddr computes the effective address of a memory instruction.
func (m *Machine) effAddr(in *ir.Instr) (uint64, error) {
	base := in.Src[0]
	if in.Op.IsStore() {
		base = in.Src[1]
	}
	var a int64
	if base == ir.NoReg {
		if in.Mem == nil || in.Mem.Array < 0 || in.Mem.Array >= len(m.arrayBase) {
			return 0, fmt.Errorf("sim: %v: absolute memory op without valid array", in)
		}
		a = int64(m.arrayBase[in.Mem.Array]) + in.Imm
	} else {
		a = m.intRegs[base] + in.Imm
	}
	if a < 0 || uint64(a)+8 > uint64(len(m.mem)) {
		return 0, fmt.Errorf("sim: %s: address %#x out of range for %v", m.fn.Name, a, in)
	}
	return uint64(a), nil
}

func condTaken(op ir.Op, v int64) bool {
	switch op {
	case ir.OpBeq:
		return v == 0
	case ir.OpBne:
		return v != 0
	case ir.OpBlt:
		return v < 0
	case ir.OpBle:
		return v <= 0
	case ir.OpBgt:
		return v > 0
	case ir.OpBge:
		return v >= 0
	}
	return true
}
