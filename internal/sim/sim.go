// Package sim is an execution-driven simulator for the low-level IR,
// modelling the DEC Alpha 21164 as the paper does (Section 4.3): a
// single-issue, in-order pipeline with non-blocking loads (a lockup-free
// first-level data cache with a bounded number of outstanding misses), a
// three-level cache hierarchy, instruction and data TLBs, and bimodal
// branch prediction. The simulator both executes the program (registers
// and memory carry real values) and accounts every stall cycle as either a
// load interlock or a fixed-latency interlock — the paper's key metric
// split.
package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
)

// predictorBits sizes the bimodal branch predictor (2^11 two-bit counters).
const predictorBits = 11

// Machine is a simulation instance for one ir.Func. Create it with New,
// initialise array contents through ArrayBase/Memory, then call Run.
type Machine struct {
	fn   *ir.Func
	hier *cache.Hierarchy

	mem       []byte
	arrayBase []uint64 // base address per fn.Arrays entry

	intRegs []int64
	fpRegs  []float64

	ready  []int64 // cycle at which each register's value is available
	isLoad []bool  // producer of the register's pending value was a load

	predictor []uint8
	codeAddr  map[*ir.Instr]uint64

	// outstanding misses in the lockup-free data cache
	missLine []uint64
	missDone []int64

	// MaxInstrs bounds execution as a runaway guard; Run fails when
	// exceeded. Zero means the default (2^40).
	MaxInstrs int64
	// IssueWidth is the number of instructions the core may issue per
	// cycle (default 1, the paper's model). Widths 2 and 4 model the
	// superscalar processors the paper names as future work: an issue
	// group ends at a taken branch, at a data stall, or when per-cycle
	// functional-unit limits are reached (memory and floating-point
	// pipes are half the width, as on the 21164).
	IssueWidth int

	issuedThisCycle int
	memThisCycle    int
	fpThisCycle     int
}

// New prepares a simulation of fn with a fresh memory hierarchy. Array
// storage is laid out contiguously, each array aligned to a cache line and
// padded by a guard region so speculative loads cannot escape simulated
// memory (the paper aligns arrays on cache-line boundaries).
func New(fn *ir.Func) (*Machine, error) {
	if err := fn.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		fn:        fn,
		hier:      cache.NewHierarchy(),
		predictor: make([]uint8, 1<<predictorBits),
	}
	const guard = 4 * cache.LineSize
	// Leave a null page so address 0 stays out of use, and start data on
	// a fresh page.
	addr := uint64(cache.PageSize)
	m.arrayBase = make([]uint64, len(fn.Arrays))
	for i, a := range fn.Arrays {
		m.arrayBase[i] = addr
		sz := (a.Size + cache.LineSize - 1) / cache.LineSize * cache.LineSize
		addr += uint64(sz) + guard
	}
	m.mem = make([]byte, addr)

	n := fn.NumRegs
	if n < 65 {
		n = 65 // physical register space after allocation
	}
	m.intRegs = make([]int64, n)
	m.fpRegs = make([]float64, n)
	m.ready = make([]int64, n)
	m.isLoad = make([]bool, n)

	// Lay code out at instruction addresses for the I-side models.
	m.codeAddr = make(map[*ir.Instr]uint64, fn.NumInstrs())
	code := uint64(64 * cache.PageSize) // code segment far from data
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			m.codeAddr[in] = code
			code += machine.InstrBytes
		}
	}
	return m, nil
}

// ArrayBase returns the simulated base address of array id.
func (m *Machine) ArrayBase(id int) uint64 { return m.arrayBase[id] }

// WriteF64 stores v at byte offset off within array id, for initialising
// inputs before Run.
func (m *Machine) WriteF64(id int, off int64, v float64) {
	binary.LittleEndian.PutUint64(m.mem[m.arrayBase[id]+uint64(off):], math.Float64bits(v))
}

// ReadF64 loads the float64 at byte offset off within array id, for
// checking outputs after Run.
func (m *Machine) ReadF64(id int, off int64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.mem[m.arrayBase[id]+uint64(off):]))
}

// WriteI64 stores v at byte offset off within array id.
func (m *Machine) WriteI64(id int, off int64, v int64) {
	binary.LittleEndian.PutUint64(m.mem[m.arrayBase[id]+uint64(off):], uint64(v))
}

// ReadI64 loads the int64 at byte offset off within array id.
func (m *Machine) ReadI64(id int, off int64) int64 {
	return int64(binary.LittleEndian.Uint64(m.mem[m.arrayBase[id]+uint64(off):]))
}

// Hierarchy exposes the memory system for inspecting hit/miss counters.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Run executes the function to completion and returns its metrics.
// EdgeCounts, when non-nil, receives per-(block,successor-index) traversal
// counts for the profiler.
func (m *Machine) Run(edges func(block, succIdx int)) (*Metrics, error) {
	if err := faultinject.Hit("sim/run", m.fn.Name); err != nil {
		return nil, err
	}
	met := &Metrics{}
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	if m.IssueWidth == 0 {
		m.IssueWidth = 1
	}
	m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
	var cycle int64
	bid := m.fn.Entry
	for {
		blk := m.fn.Blocks[bid]
		taken := false
		done := false
		for _, in := range blk.Instrs {
			if met.Instrs >= maxInstrs {
				return met, fmt.Errorf("sim: %s exceeded %d instructions (infinite loop?)", m.fn.Name, maxInstrs)
			}
			c, t, d, err := m.step(in, cycle, met)
			if err != nil {
				return met, err
			}
			cycle = c
			if t || d {
				taken, done = t, d
				break
			}
		}
		met.Cycles = cycle
		if done {
			return met, nil
		}
		var next int
		switch {
		case len(blk.Succs) == 0:
			return met, fmt.Errorf("sim: %s b%d has no successor and no ret", m.fn.Name, bid)
		case taken:
			next = blk.Succs[0]
			if edges != nil {
				edges(bid, 0)
			}
		case blk.Term() != nil && blk.Term().Op.IsCondBranch():
			next = blk.Succs[1]
			if edges != nil {
				edges(bid, 1)
			}
		default:
			next = blk.Succs[0]
			if edges != nil {
				edges(bid, 0)
			}
		}
		bid = next
	}
}

// step executes one instruction starting at the given cycle and returns
// the cycle after issue, whether a branch was taken, and whether the
// function returned.
func (m *Machine) step(in *ir.Instr, cycle int64, met *Metrics) (int64, bool, bool, error) {
	// Instruction fetch: I-TLB and I-cache.
	if fs := m.hier.FetchLatency(m.codeAddr[in]); fs > 0 {
		met.FetchStall += int64(fs)
		cycle += int64(fs)
		m.newCycle()
	}

	// Register interlocks: wait for sources (and destination, covering
	// write-after-write on a pending load and the read of Dst by
	// conditional moves).
	stallUntil := cycle
	stallOnLoad := false
	consider := func(r ir.Reg) {
		if r == ir.NoReg {
			return
		}
		if t := m.ready[r]; t > stallUntil {
			stallUntil = t
			stallOnLoad = m.isLoad[r]
		} else if t == stallUntil && t > cycle && m.isLoad[r] {
			stallOnLoad = true
		}
	}
	consider(in.Src[0])
	consider(in.Src[1])
	consider(in.Dst)
	if stallUntil > cycle {
		d := stallUntil - cycle
		if stallOnLoad {
			met.LoadInterlock += d
		} else {
			met.FixedInterlock += d
		}
		cycle = stallUntil
		m.newCycle()
	}

	issue := cycle
	cycle = m.advanceIssue(in, cycle)

	met.Instrs++
	met.ByClass[ir.ClassOf(in.Op)]++
	switch in.Spill {
	case ir.SpillStore:
		met.SpillStores++
	case ir.SpillRestore:
		met.SpillRestores++
	}

	switch {
	case in.Op == ir.OpPrefetch:
		met.Prefetches++
		if addr, err := m.effAddr(in); err == nil {
			// Non-faulting: a bad address simply drops the hint. A hint
			// with no free miss register is dropped too, rather than
			// stalling the pipe.
			m.prefetch(addr, issue)
		}
		return cycle, false, false, nil

	case in.Op.IsLoad():
		addr, err := m.effAddr(in)
		if err != nil {
			return cycle, false, false, err
		}
		lat, l1hit, mshr := m.loadAccess(addr, issue)
		met.Loads++
		if l1hit {
			met.L1DHits++
		}
		if mshr > 0 {
			// All miss registers busy: the load stalls at issue until
			// one frees. This is load-induced, so it counts as load
			// interlock.
			met.LoadInterlock += mshr
			met.MSHRStall += mshr
			cycle += mshr
			issue += mshr
			m.newCycle()
		}
		var v int64
		if addr+8 <= uint64(len(m.mem)) {
			v = int64(binary.LittleEndian.Uint64(m.mem[addr:]))
		}
		if in.Op == ir.OpLdF {
			m.fpRegs[in.Dst] = math.Float64frombits(uint64(v))
		} else {
			m.intRegs[in.Dst] = v
		}
		m.ready[in.Dst] = issue + int64(lat)
		m.isLoad[in.Dst] = true
		return cycle, false, false, nil

	case in.Op.IsStore():
		addr, err := m.effAddr(in)
		if err != nil {
			return cycle, false, false, err
		}
		if st := m.hier.Store(addr); st > 0 {
			met.StoreStall += int64(st)
			cycle += int64(st)
			m.newCycle()
		}
		if addr+8 <= uint64(len(m.mem)) {
			var bits uint64
			if in.Op == ir.OpStF {
				bits = math.Float64bits(m.fpRegs[in.Src[0]])
			} else {
				bits = uint64(m.intRegs[in.Src[0]])
			}
			binary.LittleEndian.PutUint64(m.mem[addr:], bits)
		}
		return cycle, false, false, nil

	case in.Op.IsBranch():
		if in.Op == ir.OpRet {
			return cycle, false, true, nil
		}
		taken := true
		if in.Op.IsCondBranch() {
			taken = condTaken(in.Op, m.intRegs[in.Src[0]])
			met.Branches++
			if m.predict(in) != taken {
				met.Mispredicts++
				met.BranchStall += machine.MispredictPenalty
				cycle += machine.MispredictPenalty
				m.newCycle()
			}
			m.train(in, taken)
		}
		return cycle, taken, false, nil

	default:
		m.exec(in)
		if in.Dst != ir.NoReg {
			m.ready[in.Dst] = issue + int64(machine.Latency(in.Op))
			m.isLoad[in.Dst] = false
		}
		return cycle, false, false, nil
	}
}

// advanceIssue accounts one instruction against the current issue group
// and returns the cycle at which the *next* instruction may issue. At
// width 1 every instruction starts a new cycle (the paper's model); at
// wider widths instructions share cycles until the group fills, a
// functional-unit class saturates, or a branch ends the group.
func (m *Machine) advanceIssue(in *ir.Instr, cycle int64) int64 {
	w := m.IssueWidth
	if w <= 1 {
		return cycle + 1
	}
	half := (w + 1) / 2
	if in.Op.IsMem() {
		m.memThisCycle++
	}
	if cls := ir.ClassOf(in.Op); cls == ir.ClassFPShort || cls == ir.ClassFPLong {
		m.fpThisCycle++
	}
	m.issuedThisCycle++
	if m.issuedThisCycle >= w || m.memThisCycle >= half ||
		m.fpThisCycle >= half || in.Op.IsBranch() {
		m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
		return cycle + 1
	}
	return cycle
}

// newCycle resets issue-group state when a stall forces a cycle change.
func (m *Machine) newCycle() {
	m.issuedThisCycle, m.memThisCycle, m.fpThisCycle = 0, 0, 0
}

// loadAccess performs the data-side access, managing the lockup-free
// cache's outstanding-miss registers. It returns the load-to-use latency,
// whether the access hit in L1, and any stall waiting for a free miss
// register.
func (m *Machine) loadAccess(addr uint64, issue int64) (lat int, l1hit bool, mshrStall int64) {
	lat, l1hit = m.hier.LoadLatency(addr)
	line := addr / cache.LineSize
	if l1hit {
		// The line may still be in flight from a prefetch or an earlier
		// miss: the demand load completes when the fill does.
		for i, done := range m.missDone {
			if m.missLine[i] == line && done > issue {
				if d := int(done - issue); d > lat {
					lat = d
				}
			}
		}
		return lat, true, 0
	}
	// Merge with an outstanding miss to the same line.
	live := m.missDone[:0]
	liveLines := m.missLine[:0]
	var merged int64 = -1
	for i, done := range m.missDone {
		if done > issue {
			live = append(live, done)
			liveLines = append(liveLines, m.missLine[i])
			if m.missLine[i] == line {
				merged = done
			}
		}
	}
	m.missDone, m.missLine = live, liveLines
	if merged >= 0 {
		if d := merged - issue; d < int64(lat) {
			lat = int(d)
			if lat < cache.LatL1 {
				lat = cache.LatL1
			}
		}
		return lat, false, 0
	}
	if len(m.missDone) >= cache.MSHRs {
		// Wait for the earliest outstanding miss to complete.
		min := m.missDone[0]
		minI := 0
		for i, d := range m.missDone {
			if d < min {
				min, minI = d, i
			}
		}
		mshrStall = min - issue
		if mshrStall < 0 {
			mshrStall = 0
		}
		issue = min
		m.missDone = append(m.missDone[:minI], m.missDone[minI+1:]...)
		m.missLine = append(m.missLine[:minI], m.missLine[minI+1:]...)
	}
	m.missDone = append(m.missDone, issue+int64(lat))
	m.missLine = append(m.missLine, line)
	return lat, false, mshrStall
}

// prefetch starts a cache fill for addr without blocking: on an L1 hit
// nothing happens; on a miss with a free miss register the fill is
// registered so later demand loads to the line complete with it; with all
// miss registers busy the hint is dropped.
func (m *Machine) prefetch(addr uint64, issue int64) {
	line := addr / cache.LineSize
	pending := 0
	for i, done := range m.missDone {
		if done > issue {
			pending++
			if m.missLine[i] == line {
				return // already in flight
			}
		}
	}
	if m.hier.L1D.Probe(addr) {
		return // already resident
	}
	if pending >= cache.MSHRs {
		return // dropped: no free miss register
	}
	lat, l1hit := m.hier.LoadLatency(addr)
	if l1hit {
		return
	}
	m.missDone = append(m.missDone, issue+int64(lat))
	m.missLine = append(m.missLine, line)
}

// effAddr computes the effective address of a memory instruction.
func (m *Machine) effAddr(in *ir.Instr) (uint64, error) {
	base := in.Src[0]
	if in.Op.IsStore() {
		base = in.Src[1]
	}
	var a int64
	if base == ir.NoReg {
		if in.Mem == nil || in.Mem.Array < 0 || in.Mem.Array >= len(m.arrayBase) {
			return 0, fmt.Errorf("sim: %v: absolute memory op without valid array", in)
		}
		a = int64(m.arrayBase[in.Mem.Array]) + in.Imm
	} else {
		a = m.intRegs[base] + in.Imm
	}
	if a < 0 || uint64(a)+8 > uint64(len(m.mem)) {
		return 0, fmt.Errorf("sim: %s: address %#x out of range for %v", m.fn.Name, a, in)
	}
	return uint64(a), nil
}

// exec evaluates a register-only instruction.
func (m *Machine) exec(in *ir.Instr) {
	ints := m.intRegs
	fps := m.fpRegs
	src1 := func() int64 {
		if in.UseImm {
			return in.Imm
		}
		return ints[in.Src[1]]
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.OpMovi:
		ints[in.Dst] = in.Imm
	case ir.OpMov:
		ints[in.Dst] = ints[in.Src[0]]
	case ir.OpAdd:
		ints[in.Dst] = ints[in.Src[0]] + src1()
	case ir.OpSub:
		ints[in.Dst] = ints[in.Src[0]] - src1()
	case ir.OpMul:
		ints[in.Dst] = ints[in.Src[0]] * src1()
	case ir.OpAnd:
		ints[in.Dst] = ints[in.Src[0]] & src1()
	case ir.OpOr:
		ints[in.Dst] = ints[in.Src[0]] | src1()
	case ir.OpXor:
		ints[in.Dst] = ints[in.Src[0]] ^ src1()
	case ir.OpSll:
		ints[in.Dst] = ints[in.Src[0]] << uint(src1()&63)
	case ir.OpSrl:
		ints[in.Dst] = int64(uint64(ints[in.Src[0]]) >> uint(src1()&63))
	case ir.OpSra:
		ints[in.Dst] = ints[in.Src[0]] >> uint(src1()&63)
	case ir.OpCmpEq:
		ints[in.Dst] = b2i(ints[in.Src[0]] == src1())
	case ir.OpCmpLt:
		ints[in.Dst] = b2i(ints[in.Src[0]] < src1())
	case ir.OpCmpLe:
		ints[in.Dst] = b2i(ints[in.Src[0]] <= src1())
	case ir.OpS4Add:
		ints[in.Dst] = ints[in.Src[0]]*4 + ints[in.Src[1]]
	case ir.OpS8Add:
		ints[in.Dst] = ints[in.Src[0]]*8 + ints[in.Src[1]]
	case ir.OpLdA:
		ints[in.Dst] = int64(m.arrayBase[in.Imm])
	case ir.OpCmovEq:
		if ints[in.Src[0]] == 0 {
			ints[in.Dst] = ints[in.Src[1]]
		}
	case ir.OpCmovNe:
		if ints[in.Src[0]] != 0 {
			ints[in.Dst] = ints[in.Src[1]]
		}
	case ir.OpFMovi:
		fps[in.Dst] = in.FImm
	case ir.OpFMov:
		fps[in.Dst] = fps[in.Src[0]]
	case ir.OpFAdd:
		fps[in.Dst] = fps[in.Src[0]] + fps[in.Src[1]]
	case ir.OpFSub:
		fps[in.Dst] = fps[in.Src[0]] - fps[in.Src[1]]
	case ir.OpFMul:
		fps[in.Dst] = fps[in.Src[0]] * fps[in.Src[1]]
	case ir.OpFDiv:
		fps[in.Dst] = fps[in.Src[0]] / fps[in.Src[1]]
	case ir.OpFSqrt:
		fps[in.Dst] = math.Sqrt(fps[in.Src[0]])
	case ir.OpFNeg:
		fps[in.Dst] = -fps[in.Src[0]]
	case ir.OpFAbs:
		fps[in.Dst] = math.Abs(fps[in.Src[0]])
	case ir.OpFCmpEq:
		ints[in.Dst] = b2i(fps[in.Src[0]] == fps[in.Src[1]])
	case ir.OpFCmpLt:
		ints[in.Dst] = b2i(fps[in.Src[0]] < fps[in.Src[1]])
	case ir.OpFCmpLe:
		ints[in.Dst] = b2i(fps[in.Src[0]] <= fps[in.Src[1]])
	case ir.OpCvtIF:
		fps[in.Dst] = float64(ints[in.Src[0]])
	case ir.OpCvtFI:
		ints[in.Dst] = int64(fps[in.Src[0]])
	case ir.OpFCmovEq:
		if ints[in.Src[0]] == 0 {
			fps[in.Dst] = fps[in.Src[1]]
		}
	case ir.OpFCmovNe:
		if ints[in.Src[0]] != 0 {
			fps[in.Dst] = fps[in.Src[1]]
		}
	}
}

func condTaken(op ir.Op, v int64) bool {
	switch op {
	case ir.OpBeq:
		return v == 0
	case ir.OpBne:
		return v != 0
	case ir.OpBlt:
		return v < 0
	case ir.OpBle:
		return v <= 0
	case ir.OpBgt:
		return v > 0
	case ir.OpBge:
		return v >= 0
	}
	return true
}

func (m *Machine) predictorIndex(in *ir.Instr) uint64 {
	return (m.codeAddr[in] / machine.InstrBytes) & (1<<predictorBits - 1)
}

func (m *Machine) predict(in *ir.Instr) bool {
	return m.predictor[m.predictorIndex(in)] >= 2
}

func (m *Machine) train(in *ir.Instr, taken bool) {
	i := m.predictorIndex(in)
	c := m.predictor[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	m.predictor[i] = c
}
