package sim

import (
	"runtime"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/obs"
)

// poolHits and poolMisses aggregate Get outcomes across every pool in the
// process, for the serving layer's /metrics gauges (per-cell attribution
// goes through each caller's obs registry instead).
var poolHits, poolMisses atomic.Int64

// PoolCounters returns the process-wide machine-pool hit and miss totals.
func PoolCounters() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// Pool recycles simulation machines so repeated runs — the experiment
// grid's cells, the profiler's collection pass, the serving layer's
// requests — reuse memory images, register files, hierarchies and
// predecoded streams instead of reallocating multiple megabytes per run.
// Machines come out of Get fully rewound (Machine.Reset), so a pooled run
// is bit-identical to one on a fresh machine; the differential tests
// enforce this. Safe for concurrent use; a machine must be used by one
// goroutine at a time between Get and Put.
//
// The free list is sharded: one shard per logical CPU, each behind its
// own lock, so the grid engine's workers stop serializing on a single
// pool mutex. A caller that knows its worker lane uses GetLane/PutLane
// and touches only its own shard on the steady-state path (its machine
// comes back to the same shard it was taken from); a shard miss falls
// back to scanning the other shards before building a fresh machine, so
// sharding never costs an extra allocation — only a cold scan.
//
// Pools are intended to be scoped to one benchmark (the experiment
// engine keeps one per front-end): machines then stay sized for that
// benchmark's memory image and the grid's 16 configurations share a
// handful of machines instead of allocating 16.
type Pool struct {
	// shards are independent free lists; GetLane/PutLane map a worker
	// lane onto one of them, so each engine worker has lock affinity
	// with its own shard. Each shard's lock is a TimedMutex so residual
	// contention (cold scans, oversubscribed lanes) stays attributable.
	shards []poolShard
	// nfree tracks the pool-wide idle-machine count, enforcing
	// maxPoolFree globally across shards.
	nfree atomic.Int64

	hits, misses atomic.Int64
	// rr rotates the shard hint for lane-less Get/Put callers.
	rr atomic.Uint64
}

// poolShard is one independently locked free list, padded so neighboring
// shards do not share a cache line under write contention.
type poolShard struct {
	mu   obs.TimedMutex
	free []*Machine
	_    [32]byte
}

// SetWaitHist attributes future lock contention on the pool to h. Call
// before the pool is used concurrently (the experiment engine sets it
// while building the benchmark front-end, whose once-barrier
// happens-before every worker's first Get).
func (p *Pool) SetWaitHist(h *obs.WaitHist) {
	for i := range p.shards {
		p.shards[i].mu.H = h
	}
}

// maxPoolFree bounds each pool's idle machines across all shards; beyond
// it Put drops the machine for the garbage collector. The bound only
// matters when more goroutines return machines than ever run concurrently
// again.
const maxPoolFree = 16

// maxPoolShards caps the shard count on very wide hosts; past this the
// per-shard hit rate matters more than lock spreading.
const maxPoolShards = 64

// NewPool returns an empty pool with one shard per logical CPU.
func NewPool() *Pool {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxPoolShards {
		n = maxPoolShards
	}
	return &Pool{shards: make([]poolShard, n)}
}

// Get returns a machine pointed at fn: a recycled one (reused=true) when
// the pool has an idle machine — rewound with Reset, skipping
// fn.Validate — or a freshly built one via New (which validates) when it
// does not. The caller must Put the machine back when done with it and
// its memory image (checksums read the image, so Put comes after them).
// Callers with a stable worker identity should prefer GetLane for shard
// affinity.
func (p *Pool) Get(fn *ir.Func) (m *Machine, reused bool, err error) {
	return p.GetLane(fn, int(p.rr.Add(1)-1))
}

// GetLane is Get with a shard hint: lane (an engine worker index) maps
// to a home shard, checked first under its own lock. Steady state —
// every worker Put-ing back to its own lane — never touches another
// shard's lock.
func (p *Pool) GetLane(fn *ir.Func, lane int) (m *Machine, reused bool, err error) {
	home := p.shard(lane)
	if m = p.shards[home].pop(); m == nil && p.nfree.Load() > 0 {
		// Cold scan: another shard may hold an idle machine (a worker
		// that finished its cells, or a lane-less caller). Scanning
		// beats rebuilding a multi-megabyte machine image.
		for i := range p.shards {
			if i == home {
				continue
			}
			if m = p.shards[i].pop(); m != nil {
				break
			}
		}
	}
	if m != nil {
		p.nfree.Add(-1)
		p.hits.Add(1)
		poolHits.Add(1)
		m.Reset(fn)
		return m, true, nil
	}
	p.misses.Add(1)
	poolMisses.Add(1)
	m, err = New(fn)
	if err != nil {
		return nil, false, err
	}
	return m, false, nil
}

// Put returns m to the pool for reuse. A nil machine is ignored, so Put
// is safe on error paths.
func (p *Pool) Put(m *Machine) {
	p.PutLane(m, int(p.rr.Add(1)-1))
}

// PutLane returns m to lane's home shard, keeping the machine warm for
// the same worker's next Get.
func (p *Pool) PutLane(m *Machine, lane int) {
	if m == nil {
		return
	}
	if p.nfree.Load() >= maxPoolFree {
		return // drop for the GC; the global bound is advisory, not exact
	}
	p.nfree.Add(1)
	s := &p.shards[p.shard(lane)]
	s.mu.Lock()
	s.free = append(s.free, m)
	s.mu.Unlock()
}

// shard maps a lane hint onto a shard index.
func (p *Pool) shard(lane int) int {
	if lane < 0 {
		lane = -lane
	}
	return lane % len(p.shards)
}

// pop takes one idle machine off the shard, or nil.
func (s *poolShard) pop() *Machine {
	s.mu.Lock()
	var m *Machine
	if n := len(s.free); n > 0 {
		m = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	s.mu.Unlock()
	return m
}

// idle returns the pool-wide idle-machine count (testing hook).
func (p *Pool) idle() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}

// Counters returns this pool's Get hit and miss totals.
func (p *Pool) Counters() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}
