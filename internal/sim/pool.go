package sim

import (
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/obs"
)

// poolHits and poolMisses aggregate Get outcomes across every pool in the
// process, for the serving layer's /metrics gauges (per-cell attribution
// goes through each caller's obs registry instead).
var poolHits, poolMisses atomic.Int64

// PoolCounters returns the process-wide machine-pool hit and miss totals.
func PoolCounters() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// Pool recycles simulation machines so repeated runs — the experiment
// grid's cells, the profiler's collection pass, the serving layer's
// requests — reuse memory images, register files, hierarchies and
// predecoded streams instead of reallocating multiple megabytes per run.
// Machines come out of Get fully rewound (Machine.Reset), so a pooled run
// is bit-identical to one on a fresh machine; the differential tests
// enforce this. Safe for concurrent use; a machine must be used by one
// goroutine at a time between Get and Put.
//
// Pools are intended to be scoped to one benchmark (the experiment
// engine keeps one per front-end): machines then stay sized for that
// benchmark's memory image and the grid's 16 configurations share a
// handful of machines instead of allocating 16.
type Pool struct {
	// mu guards free; it is a TimedMutex so grid-wide contention on the
	// shared per-benchmark pool is attributable (SetWaitHist). With no
	// histogram attached it behaves like a plain sync.Mutex.
	mu   obs.TimedMutex
	free []*Machine

	hits, misses atomic.Int64
}

// SetWaitHist attributes future lock contention on the pool to h. Call
// before the pool is used concurrently (the experiment engine sets it
// while building the benchmark front-end, whose once-barrier
// happens-before every worker's first Get).
func (p *Pool) SetWaitHist(h *obs.WaitHist) {
	p.mu.H = h
}

// maxPoolFree bounds each pool's idle machines; beyond it Put drops the
// machine for the garbage collector. The bound only matters when more
// goroutines return machines than ever run concurrently again.
const maxPoolFree = 16

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a machine pointed at fn: a recycled one (reused=true) when
// the pool has an idle machine — rewound with Reset, skipping
// fn.Validate — or a freshly built one via New (which validates) when it
// does not. The caller must Put the machine back when done with it and
// its memory image (checksums read the image, so Put comes after them).
func (p *Pool) Get(fn *ir.Func) (m *Machine, reused bool, err error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if m != nil {
		p.hits.Add(1)
		poolHits.Add(1)
		m.Reset(fn)
		return m, true, nil
	}
	p.misses.Add(1)
	poolMisses.Add(1)
	m, err = New(fn)
	if err != nil {
		return nil, false, err
	}
	return m, false, nil
}

// Put returns m to the pool for reuse. A nil machine is ignored, so Put
// is safe on error paths.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxPoolFree {
		p.free = append(p.free, m)
	}
	p.mu.Unlock()
}

// Counters returns this pool's Get hit and miss totals.
func (p *Pool) Counters() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}
