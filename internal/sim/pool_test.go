package sim

import (
	"sync"
	"testing"

	"repro/internal/ir"
)

func TestPoolReuseBitIdentical(t *testing.T) {
	const n = 1024
	fSum, fBr := buildSum(n), buildBranchy(n)

	baseline := func(fn *ir.Func, init func(*Machine)) *runOutcome {
		m, err := New(fn)
		if err != nil {
			t.Fatal(err)
		}
		if init != nil {
			init(m)
		}
		return observe(t, m)
	}
	wantSum := baseline(fSum, initRamp(0, n))
	wantBr := baseline(fBr, initLCG(0, n))

	p := NewPool()
	for round := 0; round < 3; round++ {
		for _, k := range []struct {
			fn   *ir.Func
			init func(*Machine)
			want *runOutcome
		}{
			{fSum, initRamp(0, n), wantSum},
			{fBr, initLCG(0, n), wantBr},
		} {
			m, _, err := p.Get(k.fn)
			if err != nil {
				t.Fatal(err)
			}
			k.init(m)
			diffOutcomes(t, observe(t, m), k.want)
			p.Put(m)
		}
	}
	hits, misses := p.Counters()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one machine serves every run)", misses)
	}
	if hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
}

func TestPoolCountersGlobal(t *testing.T) {
	h0, m0 := PoolCounters()
	p := NewPool()
	f := buildSum(64)
	m, reused, err := p.Get(f)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("first Get reported reuse")
	}
	p.Put(m)
	m, reused, err = p.Get(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Error("second Get did not reuse")
	}
	p.Put(m)
	h1, m1 := PoolCounters()
	if h1-h0 != 1 || m1-m0 != 1 {
		t.Errorf("global counters moved by (%d,%d), want (1,1)", h1-h0, m1-m0)
	}
}

func TestPoolPutNilAndCap(t *testing.T) {
	p := NewPool()
	p.Put(nil) // must not panic
	f := buildSum(16)
	ms := make([]*Machine, maxPoolFree+4)
	for i := range ms {
		m, _, err := p.Get(f)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	for _, m := range ms {
		p.Put(m)
	}
	if got := p.idle(); got != maxPoolFree {
		t.Errorf("pool holds %d machines, want cap %d", got, maxPoolFree)
	}
}

func TestPoolConcurrent(t *testing.T) {
	const n = 256
	f := buildSum(n)
	m0, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	initRamp(0, n)(m0)
	want, err := m0.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	p := NewPool()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				m, _, err := p.Get(f)
				if err != nil {
					errs <- err
					return
				}
				initRamp(0, n)(m)
				met, err := m.Run(nil)
				if err != nil {
					errs <- err
					return
				}
				if *met != *want {
					t.Errorf("pooled run metrics diverged: %v vs %v", met, want)
				}
				p.Put(m)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInvalidateForcesReinit covers the profiler's hazard: a function
// mutated in place after a run must not be replayed from the stale
// predecoded stream when the same pointer comes back through Reset.
func TestInvalidateForcesReinit(t *testing.T) {
	const n = 512
	f := buildSum(n)
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	initRamp(0, n)(m)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	m.Invalidate()
	m.Reset(f)
	if m.fn != f || len(m.dec) == 0 {
		t.Fatal("Reset after Invalidate did not re-initialise")
	}
	initRamp(0, n)(m)
	got := observe(t, m)
	fresh, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	initRamp(0, n)(fresh)
	diffOutcomes(t, got, observe(t, fresh))
}
