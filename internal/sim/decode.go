package sim

// The predecoded fast core. New (via Machine.init) decodes each ir.Instr
// exactly once into a flat, contiguous []decoded slice — dense op kind,
// register indices, immediate, precomputed code address and predictor
// index, precomputed latency and effective-address base — plus a small
// per-block table carrying the successor links. runFast then walks an
// integer PC over the flat slice: no map lookups, no pointer-chasing into
// ir.Instr, no closures, and no heap allocations per instruction. Its
// observable behaviour — every Metrics field, every hierarchy counter,
// the memory image, edge callbacks and error strings — is bit-identical
// to the reference stepper (reference.go); differential tests enforce it.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/machine"
)

// decKind is the fast core's dispatch class, a coarser split than ir.Op:
// the hot loop switches on it once, then (for kindExec) on the op.
type decKind uint8

const (
	kindExec decKind = iota
	kindLoad
	kindStore
	kindBranch // unconditional branch (not ret)
	kindCond
	kindRet
	kindPrefetch
)

// decoded is one predecoded instruction. Everything the hot loop needs
// per step is resolved at decode time; the original instruction pointer
// is kept only for error messages (cold paths).
type decoded struct {
	in *ir.Instr // error formatting only

	op    ir.Op
	kind  decKind
	cls   ir.Class
	spill ir.SpillKind

	// advanceIssue inputs at widths > 1.
	isMem, isFP, isBranch bool

	useImm bool
	fpMem  bool // OpLdF / OpStF
	badAbs bool // absolute memory op without a valid array (errors on execution)

	dst, src0, src1 ir.Reg

	imm  int64
	fimm float64

	codeAddr  uint64
	fetchLine uint64 // codeAddr / cache.LineSize
	predIdx   uint32

	lat int64 // machine.Latency(op) for kindExec

	memBase ir.Reg // effective-address base register (NoReg: absolute)
	absAddr int64  // precomputed absolute address when memBase == NoReg
}

// decBlock is the per-block index into the flat stream, mirroring
// ir.Block's control-flow fields so the run loop never touches the IR.
type decBlock struct {
	start, end   int32 // instruction range in Machine.dec
	succ0, succ1 int32 // successor block IDs (-1 when absent)
	nSuccs       int32
	condTerm     bool // terminator exists and is a conditional branch
}

// decode rebuilds the flat instruction stream and block table for the
// machine's current function. Code addresses are assigned exactly as the
// reference stepper's map: block order, machine.InstrBytes apart,
// starting at the code segment base.
func (m *Machine) decode() {
	fn := m.fn
	n := fn.NumInstrs()
	if cap(m.dec) < n {
		m.dec = make([]decoded, 0, n)
	}
	m.dec = m.dec[:0]
	if cap(m.blocks) < len(fn.Blocks) {
		m.blocks = make([]decBlock, 0, len(fn.Blocks))
	}
	m.blocks = m.blocks[:0]

	code := uint64(64 * cache.PageSize) // code segment far from data
	for _, b := range fn.Blocks {
		db := decBlock{start: int32(len(m.dec)), succ0: -1, succ1: -1}
		for _, in := range b.Instrs {
			m.dec = append(m.dec, m.decodeInstr(in, code))
			code += machine.InstrBytes
		}
		db.end = int32(len(m.dec))
		db.nSuccs = int32(len(b.Succs))
		if len(b.Succs) > 0 {
			db.succ0 = int32(b.Succs[0])
		}
		if len(b.Succs) > 1 {
			db.succ1 = int32(b.Succs[1])
		}
		if t := b.Term(); t != nil && t.Op.IsCondBranch() {
			db.condTerm = true
		}
		m.blocks = append(m.blocks, db)
	}
}

func (m *Machine) decodeInstr(in *ir.Instr, code uint64) decoded {
	cls := ir.ClassOf(in.Op)
	d := decoded{
		in:        in,
		op:        in.Op,
		cls:       cls,
		spill:     in.Spill,
		isMem:     in.Op.IsMem(),
		isFP:      cls == ir.ClassFPShort || cls == ir.ClassFPLong,
		isBranch:  in.Op.IsBranch(),
		useImm:    in.UseImm,
		dst:       in.Dst,
		src0:      in.Src[0],
		src1:      in.Src[1],
		imm:       in.Imm,
		fimm:      in.FImm,
		codeAddr:  code,
		fetchLine: code / cache.LineSize,
		predIdx:   uint32((code / machine.InstrBytes) & (1<<predictorBits - 1)),
	}
	switch {
	case in.Op == ir.OpPrefetch:
		d.kind = kindPrefetch
	case in.Op.IsLoad():
		d.kind = kindLoad
		d.fpMem = in.Op == ir.OpLdF
	case in.Op.IsStore():
		d.kind = kindStore
		d.fpMem = in.Op == ir.OpStF
	case in.Op == ir.OpRet:
		d.kind = kindRet
	case in.Op.IsCondBranch():
		d.kind = kindCond
	case in.Op.IsBranch():
		d.kind = kindBranch
	default:
		d.kind = kindExec
		d.lat = int64(machine.Latency(in.Op))
	}
	if d.kind == kindLoad || d.kind == kindStore || d.kind == kindPrefetch {
		d.memBase = in.Src[0]
		if d.kind == kindStore {
			d.memBase = in.Src[1]
		}
		if d.memBase == ir.NoReg {
			if in.Mem == nil || in.Mem.Array < 0 || in.Mem.Array >= len(m.arrayBase) {
				// The error surfaces only if the instruction executes,
				// exactly like the reference stepper's effAddr.
				d.badAbs = true
			} else {
				d.absAddr = int64(m.arrayBase[in.Mem.Array]) + in.Imm
			}
		}
	}
	return d
}

// runFast is the predecoded hot loop. Structure and cycle accounting
// mirror the reference stepper statement for statement; only the data
// representation differs.
func (m *Machine) runFast(met *Metrics, edges func(block, succIdx int), maxInstrs int64) (*Metrics, error) {
	// Invalidate the same-line fetch memo: the previous run's hierarchy
	// state is unknown here, and a cold first fetch through the full
	// hierarchy walk is always correct.
	m.lastFetchLine = ^uint64(0)

	ints, fps := m.intRegs, m.fpRegs
	// Hoist hot loop state into locals: the interleaved hierarchy calls
	// would otherwise force m's fields to be reloaded every instruction.
	dec, blocks := m.dec, m.blocks
	ready, isLoad := m.ready, m.isLoad
	predictor, mem := m.predictor, m.mem
	l1i, itlb := m.hier.L1I, m.hier.ITLB
	var cycle int64
	bid := int32(m.fn.Entry)
	for {
		blk := &blocks[bid]
		taken := false
		done := false
		for pc := blk.start; pc < blk.end; pc++ {
			if met.Instrs >= maxInstrs {
				return met, fmt.Errorf("sim: %s exceeded %d instructions (infinite loop?)", m.fn.Name, maxInstrs)
			}
			d := &dec[pc]

			// Instruction fetch: I-TLB and I-cache. Same-line fast path:
			// only fetches touch the I-side, so a fetch on the line probed
			// by the immediately preceding fetch is a guaranteed L1I hit
			// on an MRU line and an ITLB hit on an MRU page (the previous
			// access allocated both on a miss) — the hierarchy walk would
			// change nothing but the hit counters, which are bumped
			// directly to stay bit-identical with the reference stepper.
			if d.fetchLine == m.lastFetchLine {
				l1i.Hits++
				itlb.Hits++
			} else {
				m.lastFetchLine = d.fetchLine
				if fs := m.hier.FetchLatency(d.codeAddr); fs > 0 {
					met.FetchStall += int64(fs)
					cycle += int64(fs)
					m.newCycle()
				}
			}

			// Register interlocks: wait for sources (and destination,
			// covering write-after-write on a pending load and the read of
			// Dst by conditional moves). Inlined consider(src0), then
			// consider(src1), then consider(dst), preserving the reference
			// stepper's tie-breaking between load and fixed stalls.
			stallUntil := cycle
			stallOnLoad := false
			if r := d.src0; r != ir.NoReg {
				if t := ready[r]; t > stallUntil {
					stallUntil, stallOnLoad = t, isLoad[r]
				} else if t == stallUntil && t > cycle && isLoad[r] {
					stallOnLoad = true
				}
			}
			if r := d.src1; r != ir.NoReg {
				if t := ready[r]; t > stallUntil {
					stallUntil, stallOnLoad = t, isLoad[r]
				} else if t == stallUntil && t > cycle && isLoad[r] {
					stallOnLoad = true
				}
			}
			if r := d.dst; r != ir.NoReg {
				if t := ready[r]; t > stallUntil {
					stallUntil, stallOnLoad = t, isLoad[r]
				} else if t == stallUntil && t > cycle && isLoad[r] {
					stallOnLoad = true
				}
			}
			if stallUntil > cycle {
				dd := stallUntil - cycle
				if stallOnLoad {
					met.LoadInterlock += dd
				} else {
					met.FixedInterlock += dd
				}
				cycle = stallUntil
				m.newCycle()
			}

			issue := cycle
			if m.IssueWidth <= 1 {
				cycle++
			} else {
				cycle = m.advanceIssueAt(d.isMem, d.isFP, d.isBranch, cycle)
			}

			met.Instrs++
			met.ByClass[d.cls]++
			switch d.spill {
			case ir.SpillStore:
				met.SpillStores++
			case ir.SpillRestore:
				met.SpillRestores++
			}

			switch d.kind {
			case kindExec:
				m.execDec(d)
				if d.dst != ir.NoReg {
					ready[d.dst] = issue + d.lat
					isLoad[d.dst] = false
				}

			case kindLoad:
				addr, err := m.effAddrDec(d)
				if err != nil {
					return met, err
				}
				lat, l1hit, mshr := m.loadAccess(addr, issue)
				met.Loads++
				if l1hit {
					met.L1DHits++
				}
				if mshr > 0 {
					// All miss registers busy: the load stalls at issue
					// until one frees. This is load-induced, so it counts
					// as load interlock.
					met.LoadInterlock += mshr
					met.MSHRStall += mshr
					cycle += mshr
					issue += mshr
					m.newCycle()
				}
				var v int64
				if addr+8 <= uint64(len(mem)) {
					v = int64(binary.LittleEndian.Uint64(mem[addr:]))
				}
				if d.fpMem {
					fps[d.dst] = math.Float64frombits(uint64(v))
				} else {
					ints[d.dst] = v
				}
				ready[d.dst] = issue + int64(lat)
				isLoad[d.dst] = true

			case kindStore:
				addr, err := m.effAddrDec(d)
				if err != nil {
					return met, err
				}
				if st := m.hier.Store(addr); st > 0 {
					met.StoreStall += int64(st)
					cycle += int64(st)
					m.newCycle()
				}
				if addr+8 <= uint64(len(mem)) {
					var bits uint64
					if d.fpMem {
						bits = math.Float64bits(fps[d.src0])
					} else {
						bits = uint64(ints[d.src0])
					}
					binary.LittleEndian.PutUint64(mem[addr:], bits)
				}

			case kindCond:
				tk := condTaken(d.op, ints[d.src0])
				met.Branches++
				c := predictor[d.predIdx]
				if (c >= 2) != tk {
					met.Mispredicts++
					met.BranchStall += machine.MispredictPenalty
					cycle += machine.MispredictPenalty
					m.newCycle()
				}
				if tk {
					if c < 3 {
						c++
					}
				} else if c > 0 {
					c--
				}
				predictor[d.predIdx] = c
				if tk {
					taken = true
				}

			case kindBranch:
				taken = true

			case kindRet:
				done = true

			case kindPrefetch:
				met.Prefetches++
				if addr, err := m.effAddrDec(d); err == nil {
					// Non-faulting: a bad address simply drops the hint. A
					// hint with no free miss register is dropped too,
					// rather than stalling the pipe.
					if m.prefetch(addr, issue) {
						met.PrefetchFills++
					}
				}
			}
			if taken || done {
				break
			}
		}
		met.Cycles = cycle
		if done {
			return met, nil
		}
		var next int32
		switch {
		case blk.nSuccs == 0:
			return met, fmt.Errorf("sim: %s b%d has no successor and no ret", m.fn.Name, bid)
		case taken:
			next = blk.succ0
			if edges != nil {
				edges(int(bid), 0)
			}
		case blk.condTerm:
			next = blk.succ1
			if edges != nil {
				edges(int(bid), 1)
			}
		default:
			next = blk.succ0
			if edges != nil {
				edges(int(bid), 0)
			}
		}
		bid = next
	}
}

// effAddrDec computes a memory instruction's effective address from its
// decoded form, producing byte-identical errors to effAddr.
func (m *Machine) effAddrDec(d *decoded) (uint64, error) {
	var a int64
	if d.memBase == ir.NoReg {
		if d.badAbs {
			return 0, fmt.Errorf("sim: %v: absolute memory op without valid array", d.in)
		}
		a = d.absAddr
	} else {
		a = m.intRegs[d.memBase] + d.imm
	}
	if a < 0 || uint64(a)+8 > uint64(len(m.mem)) {
		return 0, fmt.Errorf("sim: %s: address %#x out of range for %v", m.fn.Name, a, d.in)
	}
	return uint64(a), nil
}

// s1 is the second integer operand: the immediate or the Src[1] register.
func (m *Machine) s1(d *decoded) int64 {
	if d.useImm {
		return d.imm
	}
	return m.intRegs[d.src1]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// execDec evaluates a register-only instruction from its decoded form:
// the reference stepper's exec with direct switch arms instead of
// closure-based operand fetch.
func (m *Machine) execDec(d *decoded) {
	ints := m.intRegs
	fps := m.fpRegs
	switch d.op {
	case ir.OpMovi:
		ints[d.dst] = d.imm
	case ir.OpMov:
		ints[d.dst] = ints[d.src0]
	case ir.OpAdd:
		ints[d.dst] = ints[d.src0] + m.s1(d)
	case ir.OpSub:
		ints[d.dst] = ints[d.src0] - m.s1(d)
	case ir.OpMul:
		ints[d.dst] = ints[d.src0] * m.s1(d)
	case ir.OpAnd:
		ints[d.dst] = ints[d.src0] & m.s1(d)
	case ir.OpOr:
		ints[d.dst] = ints[d.src0] | m.s1(d)
	case ir.OpXor:
		ints[d.dst] = ints[d.src0] ^ m.s1(d)
	case ir.OpSll:
		ints[d.dst] = ints[d.src0] << uint(m.s1(d)&63)
	case ir.OpSrl:
		ints[d.dst] = int64(uint64(ints[d.src0]) >> uint(m.s1(d)&63))
	case ir.OpSra:
		ints[d.dst] = ints[d.src0] >> uint(m.s1(d)&63)
	case ir.OpCmpEq:
		ints[d.dst] = b2i(ints[d.src0] == m.s1(d))
	case ir.OpCmpLt:
		ints[d.dst] = b2i(ints[d.src0] < m.s1(d))
	case ir.OpCmpLe:
		ints[d.dst] = b2i(ints[d.src0] <= m.s1(d))
	case ir.OpS4Add:
		ints[d.dst] = ints[d.src0]*4 + ints[d.src1]
	case ir.OpS8Add:
		ints[d.dst] = ints[d.src0]*8 + ints[d.src1]
	case ir.OpLdA:
		ints[d.dst] = int64(m.arrayBase[d.imm])
	case ir.OpCmovEq:
		if ints[d.src0] == 0 {
			ints[d.dst] = ints[d.src1]
		}
	case ir.OpCmovNe:
		if ints[d.src0] != 0 {
			ints[d.dst] = ints[d.src1]
		}
	case ir.OpFMovi:
		fps[d.dst] = d.fimm
	case ir.OpFMov:
		fps[d.dst] = fps[d.src0]
	case ir.OpFAdd:
		fps[d.dst] = fps[d.src0] + fps[d.src1]
	case ir.OpFSub:
		fps[d.dst] = fps[d.src0] - fps[d.src1]
	case ir.OpFMul:
		fps[d.dst] = fps[d.src0] * fps[d.src1]
	case ir.OpFDiv:
		fps[d.dst] = fps[d.src0] / fps[d.src1]
	case ir.OpFSqrt:
		fps[d.dst] = math.Sqrt(fps[d.src0])
	case ir.OpFNeg:
		fps[d.dst] = -fps[d.src0]
	case ir.OpFAbs:
		fps[d.dst] = math.Abs(fps[d.src0])
	case ir.OpFCmpEq:
		ints[d.dst] = b2i(fps[d.src0] == fps[d.src1])
	case ir.OpFCmpLt:
		ints[d.dst] = b2i(fps[d.src0] < fps[d.src1])
	case ir.OpFCmpLe:
		ints[d.dst] = b2i(fps[d.src0] <= fps[d.src1])
	case ir.OpCvtIF:
		fps[d.dst] = float64(ints[d.src0])
	case ir.OpCvtFI:
		ints[d.dst] = int64(fps[d.src0])
	case ir.OpFCmovEq:
		if ints[d.src0] == 0 {
			fps[d.dst] = fps[d.src1]
		}
	case ir.OpFCmovNe:
		if ints[d.src0] != 0 {
			fps[d.dst] = fps[d.src1]
		}
	}
}
