package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("t", L1Size, 1)
	if c.Access(0x1000) {
		t.Fatal("cold cache hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("miss after fill")
	}
	if !c.Access(0x1000 + LineSize - 1) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1000 + LineSize) {
		t.Fatal("next line hit without fill")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := NewCache("dm", L1Size, 1)
	a := uint64(0x0)
	b := a + L1Size // same set, different tag
	c.Access(a)
	c.Access(b)
	if c.Access(a) {
		t.Error("direct-mapped cache kept both conflicting lines")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	c := NewCache("sa", L1Size, 2)
	a := uint64(0x0)
	b := a + L1Size/2*2 // maps to same set in a 2-way cache of half the sets
	c.Access(a)
	c.Access(b)
	if !c.Access(a) {
		t.Error("2-way cache evicted line despite free way")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := NewCache("lru", 2*LineSize, 2) // one set, two ways
	c.Access(0)
	c.Access(LineSize)
	c.Access(0)            // 0 is now MRU
	c.Access(2 * LineSize) // evicts LineSize (LRU)
	if !c.Access(0) {
		t.Error("LRU evicted the MRU line")
	}
	if c.Access(LineSize) {
		t.Error("LRU kept the least recently used line")
	}
}

func TestProbeAndTouchDoNotAllocate(t *testing.T) {
	c := NewCache("p", L1Size, 1)
	if c.Probe(0x40) {
		t.Fatal("probe hit on cold cache")
	}
	c.Touch(0x40)
	if c.Probe(0x40) {
		t.Fatal("touch allocated a line")
	}
	c.Access(0x40)
	if !c.Probe(0x40) {
		t.Fatal("probe missed a filled line")
	}
	if c.Hits != 0 || c.Misses != 1 {
		t.Errorf("probe/touch perturbed counters: %d/%d", c.Hits, c.Misses)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Access(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(PageSize - 1) {
		t.Fatal("same-page access missed")
	}
	tlb.Access(PageSize)     // fills second entry
	tlb.Access(2 * PageSize) // evicts page 0 (LRU)
	if tlb.Access(0) {
		t.Error("TLB retained evicted page")
	}
}

func TestHierarchyLoadLatencies(t *testing.T) {
	h := NewHierarchy()
	addr := uint64(PageSize) // pre-warm the TLB page via a first access
	h.DTLB.Access(addr)

	lat, hit := h.LoadLatency(addr)
	if hit || lat != LatMem {
		t.Errorf("cold load: lat=%d hit=%v, want %d/false", lat, hit, LatMem)
	}
	lat, hit = h.LoadLatency(addr)
	if !hit || lat != LatL1 {
		t.Errorf("warm load: lat=%d hit=%v, want %d/true", lat, hit, LatL1)
	}

	// Evict from L1 (direct mapped) but not L2: access a conflicting line.
	h.DTLB.Access(addr + L1Size)
	h.LoadLatency(addr + L1Size)
	lat, hit = h.LoadLatency(addr)
	if hit || lat != LatL2 {
		t.Errorf("L2 hit: lat=%d hit=%v, want %d/false", lat, hit, LatL2)
	}
}

func TestHierarchyTLBPenalty(t *testing.T) {
	h := NewHierarchy()
	lat, _ := h.LoadLatency(0)
	if lat != LatMem+TLBMissPenalty {
		t.Errorf("cold access lat=%d, want %d", lat, LatMem+TLBMissPenalty)
	}
}

func TestStoreWriteThroughNoAllocate(t *testing.T) {
	h := NewHierarchy()
	h.DTLB.Access(0)
	if st := h.Store(0); st != 0 {
		t.Errorf("store stall=%d with warm TLB", st)
	}
	// The store must not have allocated in L1.
	lat, hit := h.LoadLatency(0)
	if hit {
		t.Errorf("store allocated into L1 (lat=%d)", lat)
	}
}

func TestFetchLatency(t *testing.T) {
	h := NewHierarchy()
	addr := uint64(0)
	h.ITLB.Access(addr)
	if lat := h.FetchLatency(addr); lat != LatMem-LatL1 {
		t.Errorf("cold fetch stall=%d, want %d", lat, LatMem-LatL1)
	}
	if lat := h.FetchLatency(addr); lat != 0 {
		t.Errorf("warm fetch stall=%d, want 0", lat)
	}
}

func TestCacheProperties(t *testing.T) {
	// A second access to any address immediately after the first is
	// always a hit, for any cache geometry.
	hitAfterFill := func(addr uint64, assocSel uint8) bool {
		assoc := 1 + int(assocSel%4)
		c := NewCache("q", L1Size, assoc)
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(hitAfterFill, nil); err != nil {
		t.Errorf("hit-after-fill violated: %v", err)
	}

	// Hits+Misses equals the number of Access calls.
	counts := func(addrs []uint64) bool {
		c := NewCache("q", L1Size, 2)
		for _, a := range addrs {
			c.Access(a)
		}
		return c.Hits+c.Misses == int64(len(addrs))
	}
	if err := quick.Check(counts, nil); err != nil {
		t.Errorf("counter invariant violated: %v", err)
	}
}

func TestFillAllocatesWithoutCounters(t *testing.T) {
	c := NewCache("f", L1Size, 1)
	c.Fill(0x2000)
	if c.Hits != 0 || c.Misses != 0 {
		t.Errorf("Fill moved demand counters: hits=%d misses=%d", c.Hits, c.Misses)
	}
	if !c.Probe(0x2000) {
		t.Fatal("Fill did not allocate the line")
	}
	if !c.Access(0x2000) {
		t.Fatal("demand access after Fill missed")
	}
	if c.Hits != 1 || c.Misses != 0 {
		t.Errorf("hits=%d misses=%d after filled access, want 1/0", c.Hits, c.Misses)
	}
}

func TestFillRefreshesReplacement(t *testing.T) {
	// In a 2-way set, filling the LRU line must make it MRU so the next
	// conflicting allocation evicts the other way.
	c := NewCache("lru", 2*L1Size, 2)
	a := uint64(0)
	b := a + 2*L1Size/2 // same set as a in a 2-way cache of this size
	d := b + 2*L1Size/2
	c.Access(a) // miss, allocate: a is MRU
	c.Access(b) // miss, allocate: b is MRU, a is LRU
	c.Fill(a)   // refresh a to MRU without counters
	c.Access(d) // evicts b, the LRU
	if !c.Probe(a) {
		t.Error("a was evicted despite Fill refresh")
	}
	if c.Probe(b) {
		t.Error("b survived, so Fill did not refresh a")
	}
}

func TestCacheAndTLBReset(t *testing.T) {
	c := NewCache("r", L1Size, 1)
	c.Access(0x1000)
	c.Access(0x1000)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Errorf("Reset left counters hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.Probe(0x1000) {
		t.Error("Reset left a line resident")
	}
	tlb := NewTLB(ITLBEntries)
	tlb.Access(0x1000)
	tlb.Access(0x1000)
	tlb.Reset()
	if tlb.Hits != 0 || tlb.Misses != 0 {
		t.Errorf("TLB Reset left counters hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestHierarchyResetMatchesFresh(t *testing.T) {
	h := NewHierarchy()
	for a := uint64(0); a < 4*L1Size; a += LineSize {
		h.LoadLatency(a)
		h.FetchLatency(a)
		h.Store(a)
	}
	h.PrefetchFill(8 * L1Size)
	h.Reset()
	fresh := NewHierarchy()
	// After Reset, the same access sequence must produce identical
	// latencies and counters as on a fresh hierarchy.
	for a := uint64(0); a < 2*L1Size; a += LineSize {
		l1, h1 := h.LoadLatency(a)
		l2, h2 := fresh.LoadLatency(a)
		if l1 != l2 || h1 != h2 {
			t.Fatalf("load at %#x: reset (%d,%v) vs fresh (%d,%v)", a, l1, h1, l2, h2)
		}
		if f1, f2 := h.FetchLatency(a), fresh.FetchLatency(a); f1 != f2 {
			t.Fatalf("fetch at %#x: reset %d vs fresh %d", a, f1, f2)
		}
	}
	if h.PrefetchFills != 0 && h.PrefetchFills != fresh.PrefetchFills {
		t.Errorf("PrefetchFills = %d after Reset", h.PrefetchFills)
	}
}

func TestPrefetchFillLatencyMatchesDemandMiss(t *testing.T) {
	// The prefetch fill of a non-resident line must report the same
	// latency a demand load of that line would have seen, so the fast
	// core's timing stays bit-identical to the original demand-access
	// formulation.
	hPF, hLD := NewHierarchy(), NewHierarchy()
	addrs := []uint64{0x4000, 0x4000 + L2Size, 0x4000 + L2Size + L3Size}
	for _, a := range addrs {
		got := hPF.PrefetchFill(a)
		want, _ := hLD.LoadLatency(a)
		if got != want {
			t.Errorf("PrefetchFill(%#x) = %d, demand load = %d", a, got, want)
		}
	}
	if hPF.PrefetchFills != int64(len(addrs)) {
		t.Errorf("PrefetchFills = %d, want %d", hPF.PrefetchFills, len(addrs))
	}
	if hPF.L1D.Hits != 0 || hPF.L1D.Misses != 0 {
		t.Errorf("prefetch fills polluted demand counters: hits=%d misses=%d",
			hPF.L1D.Hits, hPF.L1D.Misses)
	}
}
