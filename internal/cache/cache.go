// Package cache models the memory hierarchy of the simulated machine: a
// split first-level cache (8KB I + 8KB D, direct mapped, 32-byte lines,
// write-through, lockup-free on the data side), a unified 96KB 3-way
// second-level cache, a large direct-mapped board cache, main memory, and
// instruction/data TLBs — the hierarchy of the Alpha 21164 that the paper
// simulates (Section 4.3, Table 2).
package cache

// Default hierarchy parameters (the paper's Table 2 configuration). The
// load-to-use latencies range from 2 cycles (L1 hit) to 50 cycles (main
// memory), matching the paper's statement that the maximum load latency is
// 50 cycles.
const (
	// LineSize is the cache line size in bytes at every level.
	LineSize = 32
	// L1Size is the size of each first-level cache (instruction and data).
	L1Size = 8 * 1024
	// L2Size is the unified second-level cache size.
	L2Size = 96 * 1024
	// L2Assoc is the second-level associativity.
	L2Assoc = 3
	// L3Size is the board-level cache size.
	L3Size = 2 * 1024 * 1024
	// LatL1 is the load-to-use latency of a first-level hit.
	LatL1 = 2
	// LatL2 is the load-to-use latency of a second-level hit.
	LatL2 = 9
	// LatL3 is the load-to-use latency of a board-cache hit.
	LatL3 = 21
	// LatMem is the load-to-use latency of a main-memory access.
	LatMem = 50
	// PageSize is the virtual page size for the TLBs.
	PageSize = 8 * 1024
	// ITLBEntries is the instruction TLB capacity (21164 ITB: 48 entries).
	ITLBEntries = 48
	// DTLBEntries is the data TLB capacity (21164 DTB: 64 entries).
	DTLBEntries = 64
	// TLBMissPenalty is the software-refill cost of a TLB miss.
	TLBMissPenalty = 20
	// MSHRs is the number of outstanding misses the lockup-free data
	// cache supports (the 21164 miss-address file holds six).
	MSHRs = 6
)

// set is one direct-mapped or set-associative cache set with LRU
// replacement, storing line tags.
type set struct {
	tags []uint64 // tags[0] is most recently used; 0 means empty
}

func (s *set) lookup(tag uint64, allocate bool) bool {
	for i, t := range s.tags {
		if t == tag+1 { // +1 so tag 0 is distinguishable from empty
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag + 1
			return true
		}
	}
	if allocate {
		copy(s.tags[1:], s.tags[:len(s.tags)-1])
		s.tags[0] = tag + 1
	}
	return false
}

func (s *set) present(tag uint64) bool {
	for _, t := range s.tags {
		if t == tag+1 {
			return true
		}
	}
	return false
}

// Cache is one level of the hierarchy.
type Cache struct {
	name     string
	sets     []set
	setShift uint
	setMask  uint64

	// Hits and Misses count lookups.
	Hits, Misses int64
}

// NewCache builds a cache of size bytes with the given associativity and
// LineSize-byte lines.
func NewCache(name string, size, assoc int) *Cache {
	nsets := size / (LineSize * assoc)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{name: name, sets: make([]set, nsets)}
	for i := range c.sets {
		c.sets[i].tags = make([]uint64, assoc)
	}
	c.setShift = log2(LineSize)
	c.setMask = uint64(nsets - 1)
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Access looks addr up, allocating the line on a miss, and reports hit.
func (c *Cache) Access(addr uint64) bool {
	idx := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift
	hit := c.sets[idx].lookup(tag, true)
	if hit {
		c.Hits++
	} else {
		c.Misses++
	}
	return hit
}

// Probe reports whether addr's line is present without updating
// replacement state or counters (used by write-through stores, which do
// not allocate).
func (c *Cache) Probe(addr uint64) bool {
	idx := (addr >> c.setShift) & c.setMask
	return c.sets[idx].present(addr >> c.setShift)
}

// Touch updates the line for addr if present (a write hit under
// write-through: the line stays, replacement state refreshes).
func (c *Cache) Touch(addr uint64) {
	idx := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift
	if c.sets[idx].present(tag) {
		c.sets[idx].lookup(tag, false)
	}
}

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// TLB is a fully-associative translation buffer with LRU replacement.
type TLB struct {
	entries set
	// Hits and Misses count lookups.
	Hits, Misses int64
}

// NewTLB builds a TLB with n entries.
func NewTLB(n int) *TLB {
	return &TLB{entries: set{tags: make([]uint64, n)}}
}

// Access translates the page containing addr and reports whether the
// translation was present.
func (t *TLB) Access(addr uint64) bool {
	hit := t.entries.lookup(addr/PageSize, true)
	if hit {
		t.Hits++
	} else {
		t.Misses++
	}
	return hit
}

// Hierarchy bundles the data-side memory system: DTLB, L1 data cache and
// the shared L2/L3/memory levels. The instruction side (ITLB + L1 I-cache)
// shares the L2 and below.
type Hierarchy struct {
	// L1I and L1D are the split first-level caches.
	L1I, L1D *Cache
	// L2 is the unified second-level cache.
	L2 *Cache
	// L3 is the board-level cache.
	L3 *Cache
	// ITLB and DTLB are the translation buffers.
	ITLB, DTLB *TLB
}

// NewHierarchy builds the default (21164-like) memory system.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I:  NewCache("L1I", L1Size, 1),
		L1D:  NewCache("L1D", L1Size, 1),
		L2:   NewCache("L2", L2Size, L2Assoc),
		L3:   NewCache("L3", L3Size, 1),
		ITLB: NewTLB(ITLBEntries),
		DTLB: NewTLB(DTLBEntries),
	}
}

// LoadLatency performs a data-side load access at addr and returns the
// load-to-use latency in cycles, including any TLB refill, and whether the
// access hit in the L1 data cache.
func (h *Hierarchy) LoadLatency(addr uint64) (lat int, l1hit bool) {
	lat = 0
	if !h.DTLB.Access(addr) {
		lat += TLBMissPenalty
	}
	if h.L1D.Access(addr) {
		return lat + LatL1, true
	}
	if h.L2.Access(addr) {
		return lat + LatL2, false
	}
	if h.L3.Access(addr) {
		return lat + LatL3, false
	}
	return lat + LatMem, false
}

// Store performs a data-side store access at addr. The L1 data cache is
// write-through and no-write-allocate; lower levels are updated if
// present. It returns extra stall cycles (TLB refill only — the write
// buffer absorbs store misses).
func (h *Hierarchy) Store(addr uint64) (stall int) {
	if !h.DTLB.Access(addr) {
		stall += TLBMissPenalty
	}
	h.L1D.Touch(addr)
	h.L2.Touch(addr)
	h.L3.Touch(addr)
	return stall
}

// FetchLatency performs an instruction fetch access at addr and returns
// extra stall cycles beyond the pipelined fetch (zero on an L1 I-cache
// hit).
func (h *Hierarchy) FetchLatency(addr uint64) int {
	lat := 0
	if !h.ITLB.Access(addr) {
		lat += TLBMissPenalty
	}
	if h.L1I.Access(addr) {
		return lat
	}
	if h.L2.Access(addr) {
		return lat + (LatL2 - LatL1)
	}
	if h.L3.Access(addr) {
		return lat + (LatL3 - LatL1)
	}
	return lat + (LatMem - LatL1)
}
