// Package cache models the memory hierarchy of the simulated machine: a
// split first-level cache (8KB I + 8KB D, direct mapped, 32-byte lines,
// write-through, lockup-free on the data side), a unified 96KB 3-way
// second-level cache, a large direct-mapped board cache, main memory, and
// instruction/data TLBs — the hierarchy of the Alpha 21164 that the paper
// simulates (Section 4.3, Table 2).
package cache

// Default hierarchy parameters (the paper's Table 2 configuration). The
// load-to-use latencies range from 2 cycles (L1 hit) to 50 cycles (main
// memory), matching the paper's statement that the maximum load latency is
// 50 cycles.
const (
	// LineSize is the cache line size in bytes at every level.
	LineSize = 32
	// L1Size is the size of each first-level cache (instruction and data).
	L1Size = 8 * 1024
	// L2Size is the unified second-level cache size.
	L2Size = 96 * 1024
	// L2Assoc is the second-level associativity.
	L2Assoc = 3
	// L3Size is the board-level cache size.
	L3Size = 2 * 1024 * 1024
	// LatL1 is the load-to-use latency of a first-level hit.
	LatL1 = 2
	// LatL2 is the load-to-use latency of a second-level hit.
	LatL2 = 9
	// LatL3 is the load-to-use latency of a board-cache hit.
	LatL3 = 21
	// LatMem is the load-to-use latency of a main-memory access.
	LatMem = 50
	// PageSize is the virtual page size for the TLBs.
	PageSize = 8 * 1024
	// ITLBEntries is the instruction TLB capacity (21164 ITB: 48 entries).
	ITLBEntries = 48
	// DTLBEntries is the data TLB capacity (21164 DTB: 64 entries).
	DTLBEntries = 64
	// TLBMissPenalty is the software-refill cost of a TLB miss.
	TLBMissPenalty = 20
	// MSHRs is the number of outstanding misses the lockup-free data
	// cache supports (the 21164 miss-address file holds six).
	MSHRs = 6
)

// set is one set-associative cache set with LRU replacement, storing
// generation-stamped line tags (see Cache.gen).
type set struct {
	tags []uint64 // tags[0] is most recently used; 0 means empty
}

// lookup searches for the stamped tag pv, refreshing it to MRU on a hit
// and (when allocate is set) installing it as MRU — evicting the LRU way —
// on a miss. The leading compare short-circuits the dominant case of
// re-touching the most recently used line without any data movement.
func (s *set) lookup(pv uint64, allocate bool) bool {
	tags := s.tags
	if tags[0] == pv {
		return true
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] == pv {
			copy(tags[1:i+1], tags[:i])
			tags[0] = pv
			return true
		}
	}
	if allocate {
		copy(tags[1:], tags[:len(tags)-1])
		tags[0] = pv
	}
	return false
}

func (s *set) present(pv uint64) bool {
	for _, t := range s.tags {
		if t == pv {
			return true
		}
	}
	return false
}

// genStep is the generation increment: Reset advances the stamp baked
// into every stored tag instead of clearing the (up to half-megabyte) tag
// arrays, making pooled-machine reuse O(1). Stamps live above bit 40, so
// the scheme is exact for simulated addresses below 2^45 — far beyond any
// machine image — and a wrapped stamp falls back to a real clear.
const genStep = 1 << 40

// Cache is one level of the hierarchy.
type Cache struct {
	name     string
	flat     []uint64 // direct-mapped: one stamped tag per set
	sets     []set    // set-associative levels
	setShift uint
	setMask  uint64
	gen      uint64 // current generation stamp (multiple of genStep)

	// Hits and Misses count lookups.
	Hits, Misses int64
}

// NewCache builds a cache of size bytes with the given associativity and
// LineSize-byte lines.
func NewCache(name string, size, assoc int) *Cache {
	nsets := size / (LineSize * assoc)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{name: name}
	if assoc == 1 {
		c.flat = make([]uint64, nsets)
	} else {
		c.sets = make([]set, nsets)
		for i := range c.sets {
			c.sets[i].tags = make([]uint64, assoc)
		}
	}
	c.setShift = log2(LineSize)
	c.setMask = uint64(nsets - 1)
	return c
}

// stamp returns addr's line tag stamped with the current generation
// (+1 so tag 0 is distinguishable from an empty slot).
func (c *Cache) stamp(addr uint64) uint64 {
	return (addr >> c.setShift) + 1 + c.gen
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Access looks addr up, allocating the line on a miss, and reports hit.
func (c *Cache) Access(addr uint64) bool {
	idx := (addr >> c.setShift) & c.setMask
	pv := c.stamp(addr)
	if c.flat != nil {
		if c.flat[idx] == pv {
			c.Hits++
			return true
		}
		c.flat[idx] = pv
		c.Misses++
		return false
	}
	if c.sets[idx].lookup(pv, true) {
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// Probe reports whether addr's line is present without updating
// replacement state or counters (used by write-through stores, which do
// not allocate).
func (c *Cache) Probe(addr uint64) bool {
	idx := (addr >> c.setShift) & c.setMask
	if c.flat != nil {
		return c.flat[idx] == c.stamp(addr)
	}
	return c.sets[idx].present(c.stamp(addr))
}

// Fill allocates addr's line (refreshing replacement state when already
// present) without touching the demand hit/miss counters. Prefetch fills
// go through here so Hits and Misses keep describing demand accesses
// only; the hierarchy accounts the fill under PrefetchFills instead.
func (c *Cache) Fill(addr uint64) {
	idx := (addr >> c.setShift) & c.setMask
	if c.flat != nil {
		c.flat[idx] = c.stamp(addr)
		return
	}
	c.sets[idx].lookup(c.stamp(addr), true)
}

// Reset empties the cache and zeroes its counters, for reusing a machine
// without reallocating its hierarchy. Advancing the generation stamp
// invalidates every stored tag in O(1); only a wrapped stamp (after ~16M
// resets) pays for a real clear.
func (c *Cache) Reset() {
	c.gen += genStep
	if c.gen == 0 {
		if c.flat != nil {
			clear(c.flat)
		}
		for i := range c.sets {
			clear(c.sets[i].tags)
		}
	}
	c.Hits, c.Misses = 0, 0
}

// Touch updates the line for addr if present (a write hit under
// write-through: the line stays, replacement state refreshes).
func (c *Cache) Touch(addr uint64) {
	idx := (addr >> c.setShift) & c.setMask
	pv := c.stamp(addr)
	if c.flat != nil {
		// Direct-mapped: presence is the only replacement state.
		return
	}
	if c.sets[idx].present(pv) {
		c.sets[idx].lookup(pv, false)
	}
}

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// TLB is a fully-associative translation buffer with LRU replacement.
type TLB struct {
	entries set
	// Hits and Misses count lookups.
	Hits, Misses int64
}

// NewTLB builds a TLB with n entries.
func NewTLB(n int) *TLB {
	return &TLB{entries: set{tags: make([]uint64, n)}}
}

// Access translates the page containing addr and reports whether the
// translation was present.
func (t *TLB) Access(addr uint64) bool {
	hit := t.entries.lookup(addr/PageSize+1, true)
	if hit {
		t.Hits++
	} else {
		t.Misses++
	}
	return hit
}

// Reset empties the TLB and zeroes its counters.
func (t *TLB) Reset() {
	clear(t.entries.tags)
	t.Hits, t.Misses = 0, 0
}

// Hierarchy bundles the data-side memory system: DTLB, L1 data cache and
// the shared L2/L3/memory levels. The instruction side (ITLB + L1 I-cache)
// shares the L2 and below.
type Hierarchy struct {
	// L1I and L1D are the split first-level caches.
	L1I, L1D *Cache
	// L2 is the unified second-level cache.
	L2 *Cache
	// L3 is the board-level cache.
	L3 *Cache
	// ITLB and DTLB are the translation buffers.
	ITLB, DTLB *TLB
	// PrefetchFills counts software-prefetch fills allocated into L1D.
	// They are kept out of L1D.Hits/L1D.Misses so those counters describe
	// demand loads only.
	PrefetchFills int64
}

// NewHierarchy builds the default (21164-like) memory system.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I:  NewCache("L1I", L1Size, 1),
		L1D:  NewCache("L1D", L1Size, 1),
		L2:   NewCache("L2", L2Size, L2Assoc),
		L3:   NewCache("L3", L3Size, 1),
		ITLB: NewTLB(ITLBEntries),
		DTLB: NewTLB(DTLBEntries),
	}
}

// Reset empties every level and zeroes every counter, restoring the
// hierarchy to its NewHierarchy state without reallocating.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.L3.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.PrefetchFills = 0
}

// LoadLatency performs a data-side load access at addr and returns the
// load-to-use latency in cycles, including any TLB refill, and whether the
// access hit in the L1 data cache.
func (h *Hierarchy) LoadLatency(addr uint64) (lat int, l1hit bool) {
	lat = 0
	if !h.DTLB.Access(addr) {
		lat += TLBMissPenalty
	}
	if h.L1D.Access(addr) {
		return lat + LatL1, true
	}
	if h.L2.Access(addr) {
		return lat + LatL2, false
	}
	if h.L3.Access(addr) {
		return lat + LatL3, false
	}
	return lat + LatMem, false
}

// Store performs a data-side store access at addr. The L1 data cache is
// write-through and no-write-allocate; lower levels are updated if
// present. It returns extra stall cycles (TLB refill only — the write
// buffer absorbs store misses).
func (h *Hierarchy) Store(addr uint64) (stall int) {
	if !h.DTLB.Access(addr) {
		stall += TLBMissPenalty
	}
	h.L1D.Touch(addr)
	h.L2.Touch(addr)
	h.L3.Touch(addr)
	return stall
}

// PrefetchFill performs the data-side access of a software prefetch that
// is about to start a fill: the DTLB translates (and refills) exactly as
// for a demand load, the line is allocated into L1D, and the lower
// levels are probed for the fill latency. The L1D allocation is counted
// under PrefetchFills rather than as a demand hit or miss. The caller
// has already established that the line is not L1D-resident, so the
// returned latency is always a miss latency (L2, L3 or memory, plus any
// TLB refill).
func (h *Hierarchy) PrefetchFill(addr uint64) (lat int) {
	if !h.DTLB.Access(addr) {
		lat += TLBMissPenalty
	}
	h.L1D.Fill(addr)
	h.PrefetchFills++
	if h.L2.Access(addr) {
		return lat + LatL2
	}
	if h.L3.Access(addr) {
		return lat + LatL3
	}
	return lat + LatMem
}

// FetchLatency performs an instruction fetch access at addr and returns
// extra stall cycles beyond the pipelined fetch (zero on an L1 I-cache
// hit).
func (h *Hierarchy) FetchLatency(addr uint64) int {
	lat := 0
	if !h.ITLB.Access(addr) {
		lat += TLBMissPenalty
	}
	if h.L1I.Access(addr) {
		return lat
	}
	if h.L2.Access(addr) {
		return lat + (LatL2 - LatL1)
	}
	if h.L3.Access(addr) {
		return lat + (LatL3 - LatL1)
	}
	return lat + (LatMem - LatL1)
}
