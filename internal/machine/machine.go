// Package machine describes the modelled processor: a single-issue,
// in-order, non-blocking-load core closely following the DEC Alpha 21164
// as used in the paper (Section 4.3). Instruction latencies reproduce the
// paper's Table 3.
package machine

import "repro/internal/ir"

// Latencies for fixed-latency instructions (paper Table 3). The load entry
// is the L1 hit latency; actual load latency is supplied by the memory
// hierarchy model.
const (
	// LatInt is the latency of a short integer operation.
	LatInt = 1
	// LatIntMul is the latency of integer multiply.
	LatIntMul = 8
	// LatLoadHit is the load-to-use latency on a first-level cache hit.
	LatLoadHit = 2
	// LatStore is the store latency.
	LatStore = 1
	// LatFP is the latency of a pipelined floating-point operation.
	LatFP = 4
	// LatFPDivSingle is FP divide latency for a 23-bit fraction.
	LatFPDivSingle = 17
	// LatFPDiv is FP divide latency for a 53-bit fraction. Square root is
	// modelled at the same latency.
	LatFPDiv = 30
	// LatBranch is the branch latency.
	LatBranch = 2
	// MaxLoadLatency is the worst-case load latency (a main-memory
	// access); balanced-scheduling load weights are capped here because
	// there is never a reason to hide more (paper Section 4.2 footnote).
	MaxLoadLatency = 50
	// MispredictPenalty is the pipeline refill cost of a mispredicted
	// conditional branch (the 21164 pays roughly five cycles).
	MispredictPenalty = 5
	// InstrBytes is the encoded size of one instruction, used to lay the
	// code out for the instruction cache and branch predictor.
	InstrBytes = 4
)

// Latency returns the fixed (architectural) latency of op. For loads it
// returns the optimistic L1-hit latency, which is exactly the traditional
// scheduler's assumption.
func Latency(op ir.Op) int {
	switch {
	case op.IsLoad():
		return LatLoadHit
	case op.IsStore():
		return LatStore
	case op.IsBranch():
		return LatBranch
	case op == ir.OpMul:
		return LatIntMul
	case op == ir.OpFDiv, op == ir.OpFSqrt:
		return LatFPDiv
	case ir.ClassOf(op) == ir.ClassFPShort:
		return LatFP
	default:
		return LatInt
	}
}
