package machine

import (
	"testing"

	"repro/internal/ir"
)

func TestLatencies(t *testing.T) {
	tests := []struct {
		op  ir.Op
		lat int
	}{
		{ir.OpAdd, LatInt},
		{ir.OpMovi, LatInt},
		{ir.OpLdA, LatInt},
		{ir.OpMul, LatIntMul},
		{ir.OpLd, LatLoadHit},
		{ir.OpLdF, LatLoadHit},
		{ir.OpSt, LatStore},
		{ir.OpStF, LatStore},
		{ir.OpFAdd, LatFP},
		{ir.OpFMul, LatFP},
		{ir.OpFCmpLt, LatFP},
		{ir.OpCvtIF, LatFP},
		{ir.OpFDiv, LatFPDiv},
		{ir.OpFSqrt, LatFPDiv},
		{ir.OpBne, LatBranch},
		{ir.OpBr, LatBranch},
		{ir.OpRet, LatBranch},
		{ir.OpCmovEq, LatInt},
	}
	for _, tt := range tests {
		if got := Latency(tt.op); got != tt.lat {
			t.Errorf("Latency(%v) = %d, want %d", tt.op, got, tt.lat)
		}
	}
}

func TestTable3Values(t *testing.T) {
	// Pin the paper's Table 3 numbers so config drift is caught.
	if LatInt != 1 || LatIntMul != 8 || LatLoadHit != 2 || LatStore != 1 ||
		LatFP != 4 || LatFPDivSingle != 17 || LatFPDiv != 30 || LatBranch != 2 {
		t.Error("processor latencies diverge from the paper's Table 3")
	}
	if MaxLoadLatency != 50 {
		t.Error("maximum load latency must be 50 cycles (paper Section 4.2)")
	}
}

func TestEveryOpHasPositiveLatency(t *testing.T) {
	for op := ir.OpMovi; op <= ir.OpRet; op++ {
		if Latency(op) < 1 {
			t.Errorf("Latency(%v) = %d", op, Latency(op))
		}
	}
}
