#!/usr/bin/env sh
# bench.sh runs the performance-tracking benchmark set (simulator cores,
# grid engine, scheduler kernels) and writes the parsed results as JSON:
# a host-provenance header (go version, GOOS/GOARCH, CPU count, effective
# GOMAXPROCS) plus one object per benchmark line, so runs can be diffed
# across commits *and* across hosts — a scaling number without the core
# count that produced it is noise.
#
# Environment:
#   COUNT     repetitions per benchmark (default 3)
#   BENCHTIME go test -benchtime value (default the Go default, 1s;
#             CI's bench-smoke uses 1x for a fast existence check)
#   FILTER    -bench regex (default the full tracking set)
#   OUT       output JSON path (default BENCH_10.json in the repo root)
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
BENCHTIME="${BENCHTIME:-}"
FILTER="${FILTER:-Simulator|GridEngine|ListSchedule|BalancedWeights}"
OUT="${OUT:-BENCH_10.json}"

GOVERSION="$(go env GOVERSION)"
GOOS="$(go env GOOS)"
GOARCH="$(go env GOARCH)"
NUMCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"
MAXPROCS="${GOMAXPROCS:-$NUMCPU}"

ARGS="-run ^$ -bench $FILTER -benchmem -count=$COUNT"
if [ -n "$BENCHTIME" ]; then
  ARGS="$ARGS -benchtime=$BENCHTIME"
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086
go test $ARGS . | tee "$RAW"

{
  printf '{\n'
  printf '  "host": {"go_version": "%s", "goos": "%s", "goarch": "%s", "num_cpu": %s, "gomaxprocs": %s},\n' \
    "$GOVERSION" "$GOOS" "$GOARCH" "$NUMCPU" "$MAXPROCS"
  printf '  "benchmarks": '
  awk '
  BEGIN { print "[" ; first = 1 }
  /^Benchmark/ {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s", $1, $2
    # Remaining fields come in (value, unit) pairs: ns/op, custom metrics,
    # B/op, allocs/op.
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/[\\"]/, "", unit)
      printf ", \"%s\": %s", unit, $i
    }
    printf "}"
  }
  END { print "\n  ]" }
  ' "$RAW"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
