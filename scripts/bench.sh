#!/usr/bin/env sh
# bench.sh runs the performance-tracking benchmark set (simulator cores,
# grid engine, scheduler kernels) and writes the parsed results as JSON,
# one object per benchmark line, so runs can be diffed across commits.
#
# Environment:
#   COUNT     repetitions per benchmark (default 3)
#   BENCHTIME go test -benchtime value (default the Go default, 1s;
#             CI's bench-smoke uses 1x for a fast existence check)
#   OUT       output JSON path (default BENCH_7.json in the repo root)
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
BENCHTIME="${BENCHTIME:-}"
OUT="${OUT:-BENCH_7.json}"

ARGS="-run ^$ -bench Simulator|GridEngine|ListSchedule|BalancedWeights -benchmem -count=$COUNT"
if [ -n "$BENCHTIME" ]; then
  ARGS="$ARGS -benchtime=$BENCHTIME"
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086
go test $ARGS . | tee "$RAW"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
  if (!first) printf ",\n"
  first = 0
  printf "  {\"name\": \"%s\", \"iterations\": %s", $1, $2
  # Remaining fields come in (value, unit) pairs: ns/op, custom metrics,
  # B/op, allocs/op.
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/[\\"]/, "", unit)
    printf ", \"%s\": %s", unit, $i
  }
  printf "}"
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
