// Package repro's root benchmarks regenerate the paper's tables under the
// Go benchmark harness: one benchmark per table (4-9), reporting the
// table's headline number as a custom metric, plus microbenchmarks for the
// pipeline stages and an ablation for the scheduler's register-pressure
// control. Absolute cycle counts come from the simulated Alpha 21164
// model, so ns/op measures harness cost while the custom metrics carry
// the reproduced results.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exp"
	"repro/internal/hlirgen"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tableSubset keeps table benchmarks fast while spanning the workload's
// behaviour classes: a stencil, a matrix code, a branchy code and a
// sparse code.
var tableSubset = []string{"ARC2D", "dnasa7", "DYFESM", "spice2g6"}

func runSuite(b *testing.B, names []string) *exp.Suite {
	b.Helper()
	s, err := exp.Run(names, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// avgSpeedup averages base-config cycles over new-config cycles.
func avgSpeedup(s *exp.Suite, names []string, base, new core.Config) float64 {
	t := 0.0
	for _, n := range names {
		t += float64(s.Get(n, base).Metrics.Cycles) / float64(s.Get(n, new).Metrics.Cycles)
	}
	return t / float64(len(names))
}

var (
	bsNone = core.Config{Policy: sched.Balanced}
	tsNone = core.Config{Policy: sched.Traditional}
	bsLU4  = core.Config{Policy: sched.Balanced, Unroll: 4}
	bsLU8  = core.Config{Policy: sched.Balanced, Unroll: 8}
	tsLU4  = core.Config{Policy: sched.Traditional, Unroll: 4}
	tsLU8  = core.Config{Policy: sched.Traditional, Unroll: 8}
	bsTrS4 = core.Config{Policy: sched.Balanced, Trace: true, Unroll: 4}
	tsTrS4 = core.Config{Policy: sched.Traditional, Trace: true, Unroll: 4}
	bsTrS8 = core.Config{Policy: sched.Balanced, Trace: true, Unroll: 8}
	bsLA   = core.Config{Policy: sched.Balanced, Locality: true}
	bsLA8  = core.Config{Policy: sched.Balanced, Locality: true, Unroll: 8}
)

// BenchmarkTable4 regenerates Table 4's headline: balanced-scheduling
// speedup from loop unrolling by 4 and by 8.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, tableSubset)
		b.ReportMetric(avgSpeedup(s, tableSubset, bsNone, bsLU4), "speedup-LU4")
		b.ReportMetric(avgSpeedup(s, tableSubset, bsNone, bsLU8), "speedup-LU8")
	}
}

// BenchmarkTable5 regenerates Table 5's headline: balanced over
// traditional scheduling at each unrolling level.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, tableSubset)
		b.ReportMetric(avgSpeedup(s, tableSubset, tsNone, bsNone), "BSvsTS-noLU")
		b.ReportMetric(avgSpeedup(s, tableSubset, tsLU4, bsLU4), "BSvsTS-LU4")
		b.ReportMetric(avgSpeedup(s, tableSubset, tsLU8, bsLU8), "BSvsTS-LU8")
	}
}

// BenchmarkTable6 regenerates Table 6's headline: speedups over balanced
// scheduling alone for the strongest combination.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, tableSubset)
		b.ReportMetric(avgSpeedup(s, tableSubset, bsNone, bsTrS8), "speedup-TrS-LU8")
		b.ReportMetric(avgSpeedup(s, tableSubset, bsNone, bsLA), "speedup-LA")
	}
}

// BenchmarkTable7 regenerates Table 7's headline: balanced vs traditional
// with trace scheduling and unrolling.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, tableSubset)
		b.ReportMetric(avgSpeedup(s, tableSubset, tsTrS4, bsTrS4), "BSvsTS-TrS-LU4")
	}
}

// BenchmarkTable8 regenerates Table 8's headline: load interlock cycles as
// a share of execution, balanced vs traditional.
func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, tableSubset)
		var bsShare, tsShare float64
		for _, n := range tableSubset {
			bsShare += s.Get(n, bsNone).Metrics.LoadInterlockShare()
			tsShare += s.Get(n, tsNone).Metrics.LoadInterlockShare()
		}
		b.ReportMetric(100*bsShare/float64(len(tableSubset)), "loadIL%-BS")
		b.ReportMetric(100*tsShare/float64(len(tableSubset)), "loadIL%-TS")
	}
}

// BenchmarkTable9 regenerates Table 9's headline: locality analysis
// speedups over balanced scheduling alone, on the benchmark the paper
// singles out (tomcatv) plus the subset average.
func BenchmarkTable9(b *testing.B) {
	names := append([]string{"tomcatv"}, tableSubset...)
	for i := 0; i < b.N; i++ {
		s := runSuite(b, names)
		b.ReportMetric(avgSpeedup(s, []string{"tomcatv"}, bsNone, bsLA), "tomcatv-LA")
		b.ReportMetric(avgSpeedup(s, names, bsNone, bsLA8), "speedup-LA-LU8")
	}
}

// BenchmarkGridEngine measures the cell-parallel experiment engine on
// the table subset at one worker, at GOMAXPROCS workers and
// oversubscribed, so scheduler-granularity wins (and regressions) show
// up as ns/op deltas on multi-core hardware.
func BenchmarkGridEngine(b *testing.B) {
	for _, jobs := range []int{1, 0, 32} {
		name := fmt.Sprintf("jobs=%d", jobs)
		if jobs == 0 {
			name = "jobs=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunGrid(tableSubset, exp.Options{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGridEngineGenerated measures the engine on a seeded generated
// corpus (internal/hlirgen) instead of the paper benchmarks, so the cell
// count scales far past the 17×16 paper grid. The corpus size comes from
// GRID_BENCH_PROGRAMS (default 40 programs × 5 reduced configs = 200
// cells); the million-cell drill sets it to 200000 (10⁶ cells):
//
//	GRID_BENCH_PROGRAMS=200000 go test -run '^$' \
//	    -bench GridEngineGenerated/jobs=gomaxprocs -benchtime 1x
//
// Corpus minting happens outside the timed loop, so ns/op is pure engine:
// queue sharding, stealing, pool traffic, merge.
func BenchmarkGridEngineGenerated(b *testing.B) {
	n := 40
	if s := os.Getenv("GRID_BENCH_PROGRAMS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			b.Fatalf("bad GRID_BENCH_PROGRAMS=%q", s)
		}
		n = v
	}
	items, err := hlirgen.Corpus(7, n)
	if err != nil {
		b.Fatal(err)
	}
	cells := float64(n * len(exp.GenCells()))
	for _, jobs := range []int{1, 0} {
		name := fmt.Sprintf("jobs=%d", jobs)
		if jobs == 0 {
			name = "jobs=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunGenerated(items, exp.Options{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cells, "cells")
			b.ReportMetric(cells/b.Elapsed().Seconds()*float64(b.N), "cells/s")
		})
	}
}

// ----- pipeline-stage microbenchmarks -----

func buildLowered(b *testing.B, name string) (*lower.Result, *core.Data) {
	b.Helper()
	bm, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, d := bm.Build()
	res, err := lower.Lower(p)
	if err != nil {
		b.Fatal(err)
	}
	return res, d
}

// BenchmarkBalancedWeights measures the Kerns-Eggers weight computation on
// the workload's largest basic block (BDNA's force body).
func BenchmarkBalancedWeights(b *testing.B) {
	res, _ := buildLowered(b, "BDNA")
	var big = res.Fn.Blocks[0]
	for _, blk := range res.Fn.Blocks {
		if len(blk.Instrs) > len(big.Instrs) {
			big = blk
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dag.Build(big.Instrs, dag.Options{})
		sched.AssignWeights(g, sched.Balanced)
	}
	b.ReportMetric(float64(len(big.Instrs)), "block-instrs")
}

// BenchmarkListSchedule measures the list scheduler itself.
func BenchmarkListSchedule(b *testing.B) {
	res, _ := buildLowered(b, "BDNA")
	var big = res.Fn.Blocks[0]
	for _, blk := range res.Fn.Blocks {
		if len(blk.Instrs) > len(big.Instrs) {
			big = blk
		}
	}
	g := dag.Build(big.Instrs, dag.Options{})
	sched.AssignWeights(g, sched.Balanced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Schedule(g, res.Fn.RegClass)
	}
}

// BenchmarkRegalloc measures register allocation with spilling on an
// unrolled TRFD (the paper's spill-pressure case).
func BenchmarkRegalloc(b *testing.B) {
	bm, err := workload.ByName("TRFD")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, _ := bm.Build()
		q := p.Clone()
		res, err := lower.Lower(q)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range res.Fn.Blocks {
			trace.ScheduleBlock(res.Fn, blk, sched.Balanced)
		}
		b.StartTimer()
		if _, err := regalloc.Allocate(res.Fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulation throughput
// (instructions/second of the 21164 model).
func BenchmarkSimulator(b *testing.B) {
	bm, err := workload.ByName("QCD2")
	if err != nil {
		b.Fatal(err)
	}
	p, d := bm.Build()
	c, err := core.Compile(p, core.Config{Policy: sched.Balanced}, d)
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.New(c.Fn)
		if err != nil {
			b.Fatal(err)
		}
		core.InitMachine(m, c.ArrayID, d)
		met, err := m.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += met.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkSimulatorPooled is BenchmarkSimulator drawing its machine from
// a sim.Pool: the zero-alloc steady state of the grid engine's hot path
// (Reset + Run, no memory-image rebuild).
func BenchmarkSimulatorPooled(b *testing.B) {
	bm, err := workload.ByName("QCD2")
	if err != nil {
		b.Fatal(err)
	}
	p, d := bm.Build()
	c, err := core.Compile(p, core.Config{Policy: sched.Balanced}, d)
	if err != nil {
		b.Fatal(err)
	}
	pool := sim.NewPool()
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := pool.Get(c.Fn)
		if err != nil {
			b.Fatal(err)
		}
		core.InitMachine(m, c.ArrayID, d)
		met, err := m.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += met.Instrs
		pool.Put(m)
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkSimulatorReference measures the original instruction-walking
// stepper (sim.Machine.Reference), the differential-testing baseline the
// predecoded fast core is measured against.
func BenchmarkSimulatorReference(b *testing.B) {
	bm, err := workload.ByName("QCD2")
	if err != nil {
		b.Fatal(err)
	}
	p, d := bm.Build()
	c, err := core.Compile(p, core.Config{Policy: sched.Balanced}, d)
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.New(c.Fn)
		if err != nil {
			b.Fatal(err)
		}
		m.Reference = true
		core.InitMachine(m, c.ArrayID, d)
		met, err := m.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += met.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkCompileFullPipeline measures end-to-end compilation (locality,
// unrolling, lowering, profiling, trace scheduling, allocation).
func BenchmarkCompileFullPipeline(b *testing.B) {
	bm, err := workload.ByName("hydro2d")
	if err != nil {
		b.Fatal(err)
	}
	p, d := bm.Build()
	cfg := core.Config{Policy: sched.Balanced, Unroll: 8, Trace: true, Locality: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(p, cfg, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPressureControl quantifies the scheduler's
// register-pressure throttle (DESIGN.md §3.2): scheduling BDNA's huge
// block with and without pressure tracking and reporting the simulated
// cycle counts. Without the throttle, balanced scheduling front-loads
// every load and the allocator's spill code erases the gains.
func BenchmarkAblationPressureControl(b *testing.B) {
	bm, err := workload.ByName("BDNA")
	if err != nil {
		b.Fatal(err)
	}
	run := func(pressure bool) int64 {
		p, d := bm.Build()
		res, err := lower.Lower(p.Clone())
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range res.Fn.Blocks {
			if len(blk.Instrs) < 2 {
				continue
			}
			g := dag.Build(blk.Instrs, dag.Options{})
			sched.AssignWeights(g, sched.Balanced)
			classes := res.Fn.RegClass
			if !pressure {
				classes = nil
			}
			blk.Instrs = sched.Schedule(g, classes)
		}
		if _, err := regalloc.Allocate(res.Fn); err != nil {
			b.Fatal(err)
		}
		m, err := sim.New(res.Fn)
		if err != nil {
			b.Fatal(err)
		}
		core.InitMachine(m, res.ArrayID, d)
		met, err := m.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		return met.Cycles
	}
	for i := 0; i < b.N; i++ {
		with := run(true)
		without := run(false)
		b.ReportMetric(float64(with), "cycles-with-throttle")
		b.ReportMetric(float64(without), "cycles-without")
	}
}

// BenchmarkProfileCollection measures the execution-driven edge profiler.
func BenchmarkProfileCollection(b *testing.B) {
	bm, err := workload.ByName("DYFESM")
	if err != nil {
		b.Fatal(err)
	}
	p, d := bm.Build()
	res, err := lower.Lower(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Collect(res.Fn, func(m *sim.Machine) {
			core.InitMachine(m, res.ArrayID, d)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableE1 regenerates the superscalar extension's headline.
func BenchmarkTableE1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE1(tableSubset)
		if err != nil {
			b.Fatal(err)
		}
		var w1, w4 float64
		for _, r := range res {
			w1 += float64(r.Cycles["TS+LU4/w1"]) / float64(r.Cycles["BS+LU4/w1"])
			w4 += float64(r.Cycles["TS+LU4/w4"]) / float64(r.Cycles["BS+LU4/w4"])
		}
		b.ReportMetric(w1/float64(len(res)), "BSvsTS-w1")
		b.ReportMetric(w4/float64(len(res)), "BSvsTS-w4")
	}
}

// BenchmarkTableE2 regenerates the policy extension's headline.
func BenchmarkTableE2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE2(tableSubset)
		if err != nil {
			b.Fatal(err)
		}
		var auto float64
		for _, r := range res {
			auto += float64(r.Cycles["TS+LU4"]) / float64(r.Cycles["AUTO+LU4"])
		}
		b.ReportMetric(auto/float64(len(res)), "AUTOvsTS")
	}
}

// BenchmarkTableE3 regenerates the prefetching extension's headline on the
// benchmarks with prefetchable streams.
func BenchmarkTableE3(b *testing.B) {
	names := []string{"TRFD", "alvinn", "dnasa7"}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE3(names)
		if err != nil {
			b.Fatal(err)
		}
		var sp float64
		for _, r := range res {
			sp += float64(r.Cycles["BS+LA+LU4/w1"]) / float64(r.Cycles["BS+LA+PF+LU4/w1"])
		}
		b.ReportMetric(sp/float64(len(res)), "PF-speedup")
	}
}

// BenchmarkAblationLICM quantifies the opt-in loop-invariant code motion
// pass (DESIGN.md: the default pipeline omits it to stay calibrated to the
// paper; Multiflow had it). Reported metrics are simulated cycles for
// balanced scheduling with and without the pass across the subset.
func BenchmarkAblationLICM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var with, without int64
		for _, name := range tableSubset {
			bm, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			p, d := bm.Build()
			for _, on := range []bool{true, false} {
				cfg := core.Config{Policy: sched.Balanced, Unroll: 4, LICM: on}
				c, err := core.Compile(p, cfg, d)
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := core.Execute(c, d)
				if err != nil {
					b.Fatal(err)
				}
				if on {
					with += met.Cycles
				} else {
					without += met.Cycles
				}
			}
		}
		b.ReportMetric(float64(without)/float64(with), "licm-speedup")
	}
}
