// frontend demonstrates the textual HLIR front end: a kernel written in
// the paper's figure notation is parsed, compiled under every optimization
// combination and simulated — the same workflow cmd/bsched offers via
// -file.
//
// Run with:
//
//	go run ./examples/frontend
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/hlir"
)

func main() {
	src, err := os.ReadFile(filepath.Join("examples", "frontend", "kernel.hlir"))
	if err != nil {
		// Allow running from the example directory too.
		src, err = os.ReadFile("kernel.hlir")
		if err != nil {
			log.Fatal(err)
		}
	}
	p, err := hlir.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed program %q: %d arrays, %d top-level statements\n\n",
		p.Name, len(p.Arrays), len(p.Body))

	data := core.NewData() // inputs start zeroed; the kernel still runs
	want, err := core.Reference(p, data)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"TS", "BS", "BS+LU4", "BS+LA+LU4", "BS+LA+TrS+LU8"} {
		cfg, err := core.ParseConfig(name)
		if err != nil {
			log.Fatal(err)
		}
		c, err := core.Compile(p, cfg, data)
		if err != nil {
			log.Fatal(err)
		}
		met, got, err := core.Execute(c, data)
		if err != nil {
			log.Fatal(err)
		}
		ok := "ok"
		if got != want {
			ok = "WRONG RESULT"
		}
		fmt.Printf("%-14s %8d cycles  %7d instrs  %6d load-interlock  [%s]\n",
			name, met.Cycles, met.Instrs, met.LoadInterlock, ok)
	}
}
