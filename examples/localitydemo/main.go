// localitydemo walks through the paper's Figures 3-5: the doubly nested
// loop C[i][j] = A[i][j] + B[i][0] has spatial reuse on A (consecutive j
// touch one cache line) and temporal reuse on B (the address is invariant
// in j). Locality analysis peels the first iteration (Figure 5), unrolls
// the rest by the line size (Figure 4) and marks each load as a predicted
// cache hit or miss; the balanced scheduler then spends independent
// instructions only on the predicted misses.
//
// Run with:
//
//	go run ./examples/localitydemo
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hlir"
	"repro/internal/locality"
	"repro/internal/sched"
)

func figure3(n int) *hlir.Program {
	p := &hlir.Program{Name: "figure3"}
	a := p.NewArray("A", hlir.KFloat, n, n)
	b := p.NewArray("B", hlir.KFloat, n, n)
	c := p.NewArray("C", hlir.KFloat, n, n)
	p.Outputs = []*hlir.Array{c}
	i, j := hlir.IV("i"), hlir.IV("j")
	p.Body = []hlir.Stmt{
		hlir.For("i", hlir.I(0), hlir.I(int64(n)),
			hlir.For("j", hlir.I(0), hlir.I(int64(n)),
				hlir.Set(hlir.At(c, i, j),
					hlir.Add(hlir.At(a, i, j), hlir.At(b, i, hlir.I(0)))))),
	}
	return p
}

func main() {
	const n = 64
	p := figure3(n)

	fmt.Println("Figure 3 — the original loop:")
	fmt.Print(hlir.Format(p.Body))
	fmt.Println()

	transformed, report := locality.Apply(p, 0)
	fmt.Println("After locality analysis (Figure 5 peel + Figure 4 unroll + marks):")
	fmt.Print(hlir.Format(transformed.Body))
	fmt.Printf("\nreport: %d loops analyzed, %d peeled, %d unrolled, %d miss marks, %d hit marks\n\n",
		report.LoopsAnalyzed, report.LoopsPeeled, report.LoopsUnrolled,
		report.Misses, report.Hits)

	// Measure the effect: balanced scheduling with and without locality
	// analysis.
	data := core.NewData()
	vals := make([]float64, n*n)
	for k := range vals {
		vals[k] = float64(k%19) * 0.5
	}
	data.F[p.Arrays[0]] = vals
	data.F[p.Arrays[1]] = vals

	want, err := core.Reference(p, data)
	if err != nil {
		log.Fatal(err)
	}
	var base int64
	for _, cfg := range []core.Config{
		{Policy: sched.Balanced},
		{Policy: sched.Balanced, Locality: true},
	} {
		compiled, err := core.Compile(p, cfg, data)
		if err != nil {
			log.Fatal(err)
		}
		met, got, err := core.Execute(compiled, data)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("%s: wrong result", cfg.Name())
		}
		fmt.Printf("%-8s %8d cycles, %7d load interlock cycles (%.1f%% of total)\n",
			cfg.Name(), met.Cycles, met.LoadInterlock, 100*met.LoadInterlockShare())
		if base == 0 {
			base = met.Cycles
		} else {
			fmt.Printf("\nlocality analysis speedup: %.2fx\n", float64(base)/float64(met.Cycles))
		}
	}
}
