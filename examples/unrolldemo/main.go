// unrolldemo shows loop unrolling with postconditioning (the paper's
// Figure 4 shape): the main loop runs the unrolled copies and guarded
// remainder iterations execute afterwards, so the iteration count need not
// divide the unrolling factor. The demo prints the transformed source and
// measures how unrolling interacts with each scheduler — unrolling helps
// both, but balanced scheduling converts the extra instruction-level
// parallelism into fewer load interlocks (the paper's central result).
//
// Run with:
//
//	go run ./examples/unrolldemo
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hlir"
	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/unroll"
)

func main() {
	const n = 4099 // deliberately not a multiple of 4 or 8
	p := &hlir.Program{Name: "unrolldemo"}
	a := p.NewArray("a", hlir.KFloat, n)
	b := p.NewArray("b", hlir.KFloat, n)
	p.Outputs = []*hlir.Array{b}
	i := hlir.IV("i")
	p.Body = []hlir.Stmt{
		hlir.For("i", hlir.I(0), hlir.I(n),
			hlir.Set(hlir.At(b, i),
				hlir.Add(hlir.Mul(hlir.At(a, i), hlir.F(1.5)), hlir.At(b, i)))),
	}

	fmt.Println("Original loop:")
	fmt.Print(hlir.Format(p.Body))
	fmt.Println("\nUnrolled by 4 with a postconditioned remainder (Figure 4):")
	fmt.Print(hlir.Format(unroll.Apply(p, 4).Body))

	data := core.NewData()
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = float64(k % 23)
	}
	data.F[a] = vals

	want, err := core.Reference(p, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconfig       cycles   instrs  branches  load-interlock")
	for _, cfg := range []core.Config{
		{Policy: sched.Traditional},
		{Policy: sched.Traditional, Unroll: 4},
		{Policy: sched.Traditional, Unroll: 8},
		{Policy: sched.Balanced},
		{Policy: sched.Balanced, Unroll: 4},
		{Policy: sched.Balanced, Unroll: 8},
	} {
		compiled, err := core.Compile(p, cfg, data)
		if err != nil {
			log.Fatal(err)
		}
		met, got, err := core.Execute(compiled, data)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("%s: wrong result", cfg.Name())
		}
		fmt.Printf("%-10s %9d %8d %9d %15d\n",
			cfg.Name(), met.Cycles, met.Instrs, met.ByClass[ir.ClassBranch], met.LoadInterlock)
	}
}
