// dagdemo reconstructs the paper's Figure 1: a code DAG in which loads L0
// and L1 are mutually parallel, loads L2→L3 are in series, and two
// instructions X1, X2 are independent of all four. Balanced scheduling
// gives the parallel loads full credit for the independent instructions
// (weight 3) while the series loads must share them (weight 2); the
// traditional scheduler weights every load with the optimistic cache-hit
// latency.
//
// Run with:
//
//	go run ./examples/dagdemo
package main

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/ir"
	"repro/internal/sched"
)

func buildFigure1() []*ir.Instr {
	const (
		rX0 = ir.Reg(iota + 1)
		rL0
		rL1
		rL2
		rL3
		rX1
		rX2
	)
	mem := func(disp int64) *ir.MemRef {
		return &ir.MemRef{Array: 0, Base: 0, Disp: disp, Width: 8}
	}
	x0 := &ir.Instr{Op: ir.OpMovi, Dst: rX0, Imm: 0, Seq: 0}
	l0 := &ir.Instr{Op: ir.OpLd, Dst: rL0, Src: [2]ir.Reg{rX0}, Mem: mem(0), Seq: 1}
	l1 := &ir.Instr{Op: ir.OpLd, Dst: rL1, Src: [2]ir.Reg{rX0}, Imm: 8, Mem: mem(8), Seq: 2}
	l2 := &ir.Instr{Op: ir.OpLd, Dst: rL2, Src: [2]ir.Reg{rX0}, Imm: 16, Mem: mem(16), Seq: 3}
	// L3's address depends on L2's result: the loads are in series.
	l3 := &ir.Instr{Op: ir.OpLd, Dst: rL3, Src: [2]ir.Reg{rL2}, Mem: &ir.MemRef{Array: -1, Base: -1, Width: 8}, Seq: 4}
	x1 := &ir.Instr{Op: ir.OpMovi, Dst: rX1, Imm: 1, Seq: 5}
	x2 := &ir.Instr{Op: ir.OpMovi, Dst: rX2, Imm: 2, Seq: 6}
	return []*ir.Instr{x0, l0, l1, l2, l3, x1, x2}
}

func main() {
	names := map[ir.Reg]string{2: "L0", 3: "L1", 4: "L2", 5: "L3"}

	fmt.Println("Figure 1 DAG:")
	fmt.Println("        X0")
	fmt.Println("  ┌──┬──┴──┐")
	fmt.Println("  L0 L1    L2        X1  X2")
	fmt.Println("           │")
	fmt.Println("           L3")
	fmt.Println()

	for _, policy := range []sched.Policy{sched.Traditional, sched.Balanced} {
		instrs := buildFigure1()
		g := dag.Build(instrs, dag.Options{})
		sched.AssignWeights(g, policy)
		fmt.Printf("%s load weights:\n", policy)
		for _, n := range g.Nodes {
			if n.Instr.Op.IsLoad() {
				fmt.Printf("  %s: weight %d (priority %d)\n",
					names[n.Instr.Dst], n.Weight, n.Priority)
			}
		}
		order := sched.Schedule(g, nil)
		fmt.Print("  schedule:")
		for _, in := range order {
			label := names[in.Dst]
			if label == "" {
				label = fmt.Sprintf("X%d", in.Imm)
			}
			fmt.Printf(" %s", label)
		}
		fmt.Println()
		fmt.Println()
	}

	fmt.Println("Balanced scheduling gives L0 and L1 weight 3 — X1 and X2 can")
	fmt.Println("hide the latency of both parallel loads simultaneously — but")
	fmt.Println("the series pair L2→L3 must split that help, so each gets 2.")
}
