// tracedemo reconstructs the paper's Figure 2: a control-flow graph where
// profiling identifies blocks 1→2→4→5 as the hot trace and block 3 as the
// off-trace path. Trace scheduling treats the trace as one scheduling
// region; an instruction hoisted above the join from block 3 is copied
// onto the joining edge (compensation code) so the cold path still
// computes the right answer.
//
// Run with:
//
//	go run ./examples/tracedemo
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hlir"
	"repro/internal/sched"
)

func main() {
	// A loop whose body splits on a rarely-true condition and rejoins:
	// lowering produces the Figure 2 shape once per iteration.
	const n = 2048
	p := &hlir.Program{Name: "figure2"}
	a := p.NewArray("a", hlir.KFloat, n)
	out := p.NewArray("out", hlir.KFloat, n)
	p.Outputs = []*hlir.Array{out}
	i := hlir.IV("i")
	p.Body = []hlir.Stmt{
		hlir.For("i", hlir.I(1), hlir.I(n),
			// Block 2 / block 3: the cold path (a[i] < 0.02) clamps via
			// an array store, which cannot be predicated — a real split.
			hlir.WhenElse(hlir.Lt(hlir.At(a, i), hlir.F(0.02)),
				[]hlir.Stmt{hlir.Set(hlir.At(out, i), hlir.F(0))},
				[]hlir.Stmt{hlir.Set(hlir.At(out, i),
					hlir.Mul(hlir.At(a, i), hlir.At(a, hlir.Sub(i, hlir.I(1)))))}),
			// Blocks 4-5: the join continuation.
			hlir.Set(hlir.At(out, i),
				hlir.Add(hlir.At(out, i), hlir.Div(hlir.F(1), hlir.At(a, i))))),
	}

	data := core.NewData()
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = 0.05 + float64(k%97)*0.01 // cold path almost never taken
	}
	vals[100], vals[700] = 0.01, 0.015 // but not never
	data.F[a] = vals

	want, err := core.Reference(p, data)
	if err != nil {
		log.Fatal(err)
	}

	var base int64
	for _, cfg := range []core.Config{
		{Policy: sched.Balanced, Unroll: 4},
		{Policy: sched.Balanced, Unroll: 4, Trace: true},
	} {
		compiled, err := core.Compile(p, cfg, data)
		if err != nil {
			log.Fatal(err)
		}
		met, got, err := core.Execute(compiled, data)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("%s: wrong result", cfg.Name())
		}
		fmt.Printf("%-14s %8d cycles, %7d instructions", cfg.Name(), met.Cycles, met.Instrs)
		if compiled.Trace != nil {
			fmt.Printf("  (%d traces, %d speculated instructions, %d compensation copies)",
				compiled.Trace.Traces, compiled.Trace.Speculated, compiled.Trace.CompCopies)
		}
		fmt.Println()
		if base == 0 {
			base = met.Cycles
		} else {
			fmt.Printf("\ntrace scheduling speedup on the hot path: %.2fx\n",
				float64(base)/float64(met.Cycles))
		}
	}
	fmt.Println("\nSpeculated instructions moved above the split because the profile")
	fmt.Println("says the cold side almost never executes; compensation copies on the")
	fmt.Println("join edge keep the cold path correct (the paper's Figure 2 rules).")
}
