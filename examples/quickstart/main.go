// Quickstart: build a small loop program, compile it under traditional and
// balanced scheduling, simulate both on the Alpha 21164 model and compare.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hlir"
	"repro/internal/sched"
)

func main() {
	// A dot-product-flavoured kernel over arrays larger than the 8KB L1
	// cache, so loads really miss and scheduling matters.
	const n = 4096
	p := &hlir.Program{Name: "quickstart"}
	a := p.NewArray("a", hlir.KFloat, n)
	b := p.NewArray("b", hlir.KFloat, n)
	out := p.NewArray("out", hlir.KFloat, n)
	p.Outputs = []*hlir.Array{out}
	i := hlir.IV("i")
	p.Body = []hlir.Stmt{
		hlir.For("i", hlir.I(0), hlir.I(n),
			hlir.Set(hlir.At(out, i),
				hlir.Add(hlir.Mul(hlir.At(a, i), hlir.At(b, i)),
					hlir.At(out, i)))),
	}

	// Inputs.
	data := core.NewData()
	av := make([]float64, n)
	bv := make([]float64, n)
	for k := 0; k < n; k++ {
		av[k] = float64(k%17) * 0.25
		bv[k] = float64(k%5) - 2
	}
	data.F[a] = av
	data.F[b] = bv

	// The interpreter gives the ground truth every compiled configuration
	// must reproduce bit for bit.
	want, err := core.Reference(p, data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("config        cycles   instrs  load-interlock  share")
	var cycles [2]int64
	for pi, policy := range []sched.Policy{sched.Traditional, sched.Balanced} {
		cfg := core.Config{Policy: policy, Unroll: 4}
		compiled, err := core.Compile(p, cfg, data)
		if err != nil {
			log.Fatal(err)
		}
		met, got, err := core.Execute(compiled, data)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("%s: wrong output (checksum %x, want %x)", cfg.Name(), got, want)
		}
		fmt.Printf("%-10s %9d %8d %15d %5.1f%%\n",
			cfg.Name(), met.Cycles, met.Instrs, met.LoadInterlock,
			100*met.LoadInterlockShare())
		cycles[pi] = met.Cycles
	}
	fmt.Printf("\nbalanced-scheduling speedup: %.2fx\n",
		float64(cycles[0])/float64(cycles[1]))
}
