// Command bschedd is the compile-as-a-service daemon: a long-running
// HTTP server that compiles, schedules and simulates workload benchmarks
// on request, built on the same cell engine as paperbench.
//
// Usage (worker mode, the default):
//
//	bschedd [-addr :8344] [-queue N] [-workers N] [-deadline d] [-max-deadline d]
//	        [-cache N] [-breaker-threshold N] [-breaker-cooldown d]
//	        [-drain-timeout d] [-journal reqs.jsonl] [-verify]
//	        [-max-body N] [-read-header-timeout d]
//	        [-faultspec spec] [-faultseed N] [-tracefile out.json] [-v]
//	        [-log-level debug|info|warn|error]
//
// Usage (coordinator mode):
//
//	bschedd -coordinator -workers host:port,host:port,...
//	        [-addr :8344] [-inflight N] [-attempts N] [-hedge-after d]
//	        [-probe-interval d] [-probe-max-interval d] [-evict-after N]
//	        [-min-workers N] [-coord-cache N]
//	        [-breaker-threshold N] [-breaker-cooldown d]
//	        [-journal cells.jsonl] [-resume] [-drain-timeout d] [-v]
//
// In coordinator mode bschedd serves the same endpoints but executes
// nothing itself: /v1/grid cells shard across the worker fleet by
// consistent hash on benchmark name (keeping each worker's per-benchmark
// front-end and result caches hot), health-checked via /readyz with
// exponential-backoff probing, dispatched under bounded per-worker
// in-flight windows with per-cell retry, jittered backoff, failover to
// the next healthy worker, and hedged dispatch for stragglers. When
// every replica of a cell is exhausted the cell degrades to a structured
// error entry — the grid never fails whole. /v1/grid?stream=jsonl (or
// sse) streams cells as they finish. The -workers flag is the initial
// fleet roster: a comma-separated host:port list (in worker mode the
// same flag is the pipeline concurrency bound).
//
// The fleet is elastic: POST /v1/fleet/join {"addr":"host:port"} admits
// a worker at runtime (it is probed synchronously and starts receiving
// cells immediately), POST /v1/fleet/leave removes one (in-flight cells
// drain, new cells stop routing at once), GET /v1/fleet/members lists
// the roster, and -evict-after N removes a worker automatically after N
// consecutive failed health probes (the last member is never evicted).
// Membership changes mutate the consistent-hash ring incrementally, so
// only ~1/n of benchmark keys remap and the surviving workers' caches
// stay hot. Every served cell's bytes are promoted into a shared
// result-cache tier (-coord-cache entries); failovers consult that tier
// — then the surviving workers' own caches over GET /v1/cache/{key} —
// before recomputing, so a worker death does not cost recomputation of
// what it had already served. The coordinator's /readyz is quorum-aware:
// it answers 503 naming the down workers while fewer than -min-workers
// members are healthy.
//
// Endpoints:
//
//	POST /v1/compile  {"bench":"tomcatv","config":"BS+LU4","verify":false,"deadline_ms":2000}
//	POST /v1/grid     {"benches":["tomcatv"],"configs":["BS","TS"],"deadline_ms":10000}
//	GET  /healthz     liveness (200 while the process serves)
//	GET  /readyz      readiness (503 while draining or breaker-saturated)
//	GET  /metrics     Prometheus text: counters + latency histograms + queue/breaker/cache gauges
//	GET  /debug/obs   live observability snapshot as JSON (stats, gauges, runtime, waits)
//
// Robustness: requests beyond -queue are shed with 429 + Retry-After;
// every request runs under a deadline propagated through the pipeline
// (expiry returns a structured 504 naming the phase); repeated pipeline
// faults open a per-benchmark circuit breaker (503 until a half-open
// probe succeeds); duplicate in-flight requests collapse to one compile
// (singleflight) in front of an LRU result cache. On SIGTERM/SIGINT the
// daemon drains: it stops accepting, finishes or cancels in-flight work
// under -drain-timeout, flushes the request journal and exits 0.
//
// Logging: structured log/slog lines on stderr, thresholded by
// -log-level. Every line carries the request ID (client X-Request-Id or
// minted), the same ID stamped on the response header, the error body's
// request_id field and the request journal — one join key across all
// four.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("bschedd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	queue := fs.Int("queue", 64, "admission queue capacity (excess requests are shed with 429)")
	workers := fs.String("workers", "", "worker mode: max concurrently executing pipeline runs (0 = GOMAXPROCS); coordinator mode: comma-separated worker host:port list")
	coordinator := fs.Bool("coordinator", false, "run as a fleet coordinator sharding grid cells across -workers instead of executing locally")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-request deadline")
	maxDeadline := fs.Duration("max-deadline", 2*time.Minute, "ceiling on client-requested deadlines")
	cache := fs.Int("cache", 256, "result-cache capacity (entries)")
	brkThreshold := fs.Int("breaker-threshold", 3, "consecutive faults that open a breaker (per benchmark in worker mode, per worker in coordinator mode)")
	brkCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight work on SIGTERM/SIGINT")
	journal := fs.String("journal", "", "append each finished request (worker) or cell (coordinator) to this JSONL journal")
	resume := fs.Bool("resume", false, "coordinator: replay completed cells from -journal instead of re-dispatching them")
	verifyFlag := fs.Bool("verify", false, "run structural invariant verifiers inside every request")
	maxBody := fs.Int64("max-body", 1<<20, "request-body size limit in bytes (413 beyond it)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "HTTP header read timeout (slow-loris protection)")
	inflight := fs.Int("inflight", 8, "coordinator: bounded in-flight dispatch window per worker")
	attempts := fs.Int("attempts", 0, "coordinator: max dispatch attempts per cell (0 = 2x fleet size)")
	hedgeAfter := fs.Duration("hedge-after", 2*time.Second, "coordinator: hedge a straggler cell onto the next replica after this long (0 disables)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "coordinator: /readyz health-check cadence for healthy workers")
	probeMaxInterval := fs.Duration("probe-max-interval", 8*time.Second, "coordinator: exponential probe-backoff ceiling for unhealthy workers")
	evictAfter := fs.Int("evict-after", 0, "coordinator: evict a worker after this many consecutive failed probes (0 = never)")
	minWorkers := fs.Int("min-workers", 1, "coordinator: /readyz quorum — 503 while fewer workers are healthy")
	coordCache := fs.Int("coord-cache", 4096, "coordinator: shared result-cache tier capacity (entries)")
	faultSpec := fs.String("faultspec", "", "deterministic fault-injection plan (chaos drills)")
	faultSeed := fs.Int64("faultseed", 1, "seed for probabilistic fault-injection decisions")
	traceFile := fs.String("tracefile", "", "write a Chrome trace-event JSON timeline of served requests at exit")
	verbose := fs.Bool("v", false, "log request lifecycle events")
	logLevel := fs.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bschedd: -log-level %q: %v\n", *logLevel, err)
		return 1
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *faultSpec != "" {
		plan, err := faultinject.ParseSpec(*faultSeed, *faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bschedd:", err)
			return 1
		}
		faultinject.Enable(plan)
		defer faultinject.Disable()
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
	}

	// Both modes expose the same lifecycle: a handler to serve and a
	// drain to run on SIGTERM.
	var handler http.Handler
	var drain func(context.Context) error
	if *coordinator {
		var fleetAddrs []string
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				fleetAddrs = append(fleetAddrs, a)
			}
		}
		coord, err := fleet.New(fleet.Config{
			Workers:          fleetAddrs,
			Inflight:         *inflight,
			Attempts:         *attempts,
			HedgeAfter:       *hedgeAfter,
			ProbeInterval:    *probeInterval,
			ProbeMaxInterval: *probeMaxInterval,
			EvictAfterFails:  *evictAfter,
			MinWorkers:       *minWorkers,
			CacheEntries:     *coordCache,
			BreakerThreshold: *brkThreshold,
			BreakerCooldown:  *brkCooldown,
			DefaultDeadline:  *deadline,
			MaxDeadline:      *maxDeadline,
			MaxBodyBytes:     *maxBody,
			Journal:          *journal,
			Resume:           *resume,
			Logger:           logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bschedd:", err)
			return 1
		}
		handler, drain = coord.Handler(), coord.Drain
	} else {
		pipelineWorkers := 0
		if *workers != "" {
			n, err := strconv.Atoi(*workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bschedd: -workers %q: want an integer in worker mode (a host:port list needs -coordinator)\n", *workers)
				return 1
			}
			pipelineWorkers = n
		}
		srv, err := server.New(server.Config{
			Queue:            *queue,
			Workers:          pipelineWorkers,
			DefaultDeadline:  *deadline,
			MaxDeadline:      *maxDeadline,
			CacheEntries:     *cache,
			BreakerThreshold: *brkThreshold,
			BreakerCooldown:  *brkCooldown,
			MaxBodyBytes:     *maxBody,
			Journal:          *journal,
			Verify:           *verifyFlag,
			Tracer:           tracer,
			Logger:           logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bschedd:", err)
			return 1
		}
		handler, drain = srv.Handler(), srv.Drain
	}

	// Listen explicitly (rather than ListenAndServe) so ":0" works and the
	// resolved address is reportable — tests and scripts bind an ephemeral
	// port and read it off stderr.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bschedd:", err)
		return 1
	}
	httpSrv := server.NewHTTPServer(handler, *readHeaderTimeout)
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if *verbose {
		if *coordinator {
			fmt.Fprintf(os.Stderr, "bschedd: coordinating on %s (workers %s)\n", ln.Addr(), *workers)
		} else {
			fmt.Fprintf(os.Stderr, "bschedd: serving on %s (queue %d)\n", ln.Addr(), *queue)
		}
	}

	select {
	case err := <-errCh:
		// The listener died before any signal: fatal.
		fmt.Fprintln(os.Stderr, "bschedd:", err)
		return 1
	case <-sigCtx.Done():
	}

	// Graceful drain: flip readiness and reject new work first, then give
	// in-flight requests until -drain-timeout before canceling them, then
	// close the listener. The journal is flushed before Drain returns.
	if *verbose {
		fmt.Fprintf(os.Stderr, "bschedd: draining (timeout %s)\n", *drainTimeout)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bschedd: journal:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "bschedd: shutdown:", err)
		code = 1
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed

	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err == nil {
			err = tracer.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bschedd: writing trace:", err)
			code = 1
		}
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "bschedd: drained, exiting")
	}
	return code
}
