package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The daemon's lifecycle — serve, answer, drain on SIGTERM, exit 0 — is
// asserted end-to-end: the test binary re-execs itself with
// BSCHEDD_BE_MAIN=1, in which case TestMain runs realMain instead of the
// test suite.

func TestMain(m *testing.M) {
	if os.Getenv("BSCHEDD_BE_MAIN") == "1" {
		os.Exit(realMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-faultspec", "garbage spec without equals"},
	} {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "BSCHEDD_BE_MAIN=1")
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Errorf("%v: err %v, want exit code 1", args, err)
		}
	}
}

// TestServeDrainExitsClean boots the daemon on an ephemeral port, serves
// a compile request, then SIGTERMs it and asserts a clean drain: exit
// code 0 and a journal holding every admitted request.
func TestServeDrainExitsClean(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "requests.jsonl")
	cmd := exec.Command(os.Args[0],
		"-addr", "127.0.0.1:0", "-v", "-journal", journal, "-drain-timeout", "5s")
	cmd.Env = append(os.Environ(), "BSCHEDD_BE_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first -v line reports the resolved listen address.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving on "); i >= 0 {
			addr = strings.Fields(line[i+len("serving on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/compile", "application/json",
		bytes.NewReader([]byte(`{"bench":"tomcatv","config":"BS+LU4"}`)))
	if err != nil {
		t.Fatalf("compile request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d body %s", resp.StatusCode, body)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hresp)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited dirty on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}

	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("journal holds %d lines, want 1:\n%s", len(lines), b)
	}
	var rec struct {
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("torn journal line %q: %v", lines[0], err)
	}
	if rec.Endpoint != "compile" || rec.Status != http.StatusOK {
		t.Errorf("journal record %+v, want compile/200", rec)
	}
}
