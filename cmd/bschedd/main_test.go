package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The daemon's lifecycle — serve, answer, drain on SIGTERM, exit 0 — is
// asserted end-to-end: the test binary re-execs itself with
// BSCHEDD_BE_MAIN=1, in which case TestMain runs realMain instead of the
// test suite.

func TestMain(m *testing.M) {
	if os.Getenv("BSCHEDD_BE_MAIN") == "1" {
		os.Exit(realMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-faultspec", "garbage spec without equals"},
	} {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "BSCHEDD_BE_MAIN=1")
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Errorf("%v: err %v, want exit code 1", args, err)
		}
	}
}

// startDaemon boots one bschedd subprocess with args and scrapes its
// resolved listen address off the -v stderr line containing marker.
func startDaemon(t *testing.T, marker string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BSCHEDD_BE_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, marker); i >= 0 {
			addr = strings.Fields(line[i+len(marker):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon %v never reported its address: %v", args, sc.Err())
	}
	go io.Copy(io.Discard, stderr)
	return cmd, addr
}

func postGrid(t *testing.T, base string, req any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/grid", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("grid request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// TestCoordinatorFleetSurvivesWorkerKill is the process-level chaos
// drill: a coordinator over two real worker daemons serves a grid, one
// worker is SIGKILLed, and the next grid still completes with zero
// failed cells on the survivor. SIGTERM then drains the coordinator to
// a clean exit 0 with an intact, fully attributed cell journal.
func TestCoordinatorFleetSurvivesWorkerKill(t *testing.T) {
	w1, addr1 := startDaemon(t, "serving on ", "-addr", "127.0.0.1:0", "-v")
	w2, addr2 := startDaemon(t, "serving on ", "-addr", "127.0.0.1:0", "-v")
	journal := filepath.Join(t.TempDir(), "cells.jsonl")
	coord, caddr := startDaemon(t, "coordinating on ",
		"-coordinator", "-workers", addr1+","+addr2,
		"-addr", "127.0.0.1:0", "-v", "-journal", journal,
		"-probe-interval", "50ms", "-drain-timeout", "10s")
	base := "http://" + caddr

	type gridDoc struct {
		Cells []struct {
			Bench   string          `json:"bench"`
			Config  string          `json:"config"`
			Metrics json.RawMessage `json:"metrics"`
			Error   string          `json:"error"`
			Kind    string          `json:"kind"`
		} `json:"cells"`
	}
	req := map[string]any{
		"benches": []string{"tomcatv", "TRFD", "ora", "swm256"},
		"configs": []string{"BS", "TS"},
	}
	checkGrid := func(label string, wantCells int) {
		status, body := postGrid(t, base, req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d body %s", label, status, body)
		}
		var doc gridDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: grid body: %v", label, err)
		}
		if len(doc.Cells) != wantCells {
			t.Fatalf("%s: %d cells, want %d", label, len(doc.Cells), wantCells)
		}
		for _, cell := range doc.Cells {
			if cell.Error != "" || len(cell.Metrics) == 0 {
				t.Errorf("%s: cell %s/%s failed: kind=%q err=%q",
					label, cell.Bench, cell.Config, cell.Kind, cell.Error)
			}
		}
	}

	checkGrid("grid before kill", 8)

	// SIGKILL one worker — no drain, no goodbye — and immediately ask
	// for the same grid. The survivor must complete every cell.
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w1.Wait()
	checkGrid("grid after SIGKILL", 8)

	// Drain the coordinator: exit 0 and a well-formed journal.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- coord.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("coordinator exited dirty on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		coord.Process.Kill()
		t.Fatal("coordinator did not exit within 15s of SIGTERM")
	}

	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	if len(lines) != 16 {
		t.Fatalf("journal holds %d cell records, want 16:\n%s", len(lines), b)
	}
	for i, line := range lines {
		var rec struct {
			Bench  string `json:"bench"`
			Status string `json:"status"`
			Worker string `json:"worker"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %d %q: %v", i, line, err)
		}
		if rec.Status != "ok" {
			t.Errorf("journal line %d: status %q, want ok", i, rec.Status)
		}
		// After the SIGKILL, failed-over cells may be attributed to the
		// shared cache tier instead of a live worker address.
		attributed := rec.Worker == addr1 || rec.Worker == addr2 ||
			rec.Worker == "fleet-cache" || strings.HasPrefix(rec.Worker, "peer-cache:")
		if !attributed {
			t.Errorf("journal line %d: worker %q is not in the fleet", i, rec.Worker)
		}
	}

	w2.Process.Signal(syscall.SIGTERM)
	w2.Wait()
}

// TestServeDrainExitsClean boots the daemon on an ephemeral port, serves
// a compile request, then SIGTERMs it and asserts a clean drain: exit
// code 0 and a journal holding every admitted request.
func TestServeDrainExitsClean(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "requests.jsonl")
	cmd := exec.Command(os.Args[0],
		"-addr", "127.0.0.1:0", "-v", "-journal", journal, "-drain-timeout", "5s")
	cmd.Env = append(os.Environ(), "BSCHEDD_BE_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first -v line reports the resolved listen address.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving on "); i >= 0 {
			addr = strings.Fields(line[i+len("serving on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/compile", "application/json",
		bytes.NewReader([]byte(`{"bench":"tomcatv","config":"BS+LU4"}`)))
	if err != nil {
		t.Fatalf("compile request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d body %s", resp.StatusCode, body)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hresp)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited dirty on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}

	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("journal holds %d lines, want 1:\n%s", len(lines), b)
	}
	var rec struct {
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("torn journal line %q: %v", lines[0], err)
	}
	if rec.Endpoint != "compile" || rec.Status != http.StatusOK {
		t.Errorf("journal record %+v, want compile/200", rec)
	}
}
