package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestChurnPlanDeterministic: the kill/join timeline is a pure function
// of the seed — same seed, same plan; different seed, (almost surely) a
// different plan.
func TestChurnPlanDeterministic(t *testing.T) {
	a := churnPlan(7, 10, 3)
	b := churnPlan(7, 10, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := churnPlan(8, 10, 3)
	if reflect.DeepEqual(a, c) {
		t.Error("seeds 7 and 8 produced identical 10-op plans")
	}
}

// TestChurnPlanNeverSinksBelowTwoWorkers: no prefix of any plan leaves
// fewer than two live workers — the drill measures churn, not fleet
// death.
func TestChurnPlanNeverSinksBelowTwoWorkers(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		alive := 3
		for _, op := range churnPlan(seed, 12, 3) {
			switch op.Action {
			case "kill":
				alive--
			case "join":
				alive++
			}
			if alive < 2 {
				t.Fatalf("seed %d plan sinks to %d live workers", seed, alive)
			}
		}
	}
}

// TestDrillEndToEnd runs a small drill twice with the same seed and
// checks the report's contract: zero degraded rows, at least one
// recompute avoided (the deterministic final phase guarantees it), an
// intact journal, a clean drain, and a timeline that replays exactly.
func TestDrillEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drill boots a real fleet; skipped in -short")
	}
	dir := t.TempDir()
	run := func(out string) report {
		t.Helper()
		code := realMain([]string{
			"-workers", "3", "-grids", "20", "-concurrency", "4",
			"-drillseed", "7", "-churn-ops", "3", "-out", out,
		})
		if code != 0 {
			t.Fatalf("fleetdrill exited %d", code)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var rep report
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("report: %v", err)
		}
		return rep
	}

	rep := run(filepath.Join(dir, "a.json"))
	if rep.CellsTotal == 0 {
		t.Fatal("drill dispatched no cells")
	}
	if rep.CellsDegraded != 0 {
		t.Errorf("cells_degraded = %d, want 0 (survivors always existed)", rep.CellsDegraded)
	}
	if rep.RecomputeAvoided < 1 {
		t.Errorf("recompute_avoided = %d, want >= 1 (the final phase kills a warmed owner)", rep.RecomputeAvoided)
	}
	if !rep.Journal.Intact {
		t.Errorf("journal not intact: %+v", rep.Journal)
	}
	if !rep.CleanDrain {
		t.Error("drain was not clean")
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Errorf("implausible latency summary: %+v", rep.LatencyMS)
	}
	if len(rep.ChurnTimeline) != 3 {
		t.Errorf("timeline holds %d ops, want 3", len(rep.ChurnTimeline))
	}

	rep2 := run(filepath.Join(dir, "b.json"))
	if !reflect.DeepEqual(rep.ChurnTimeline, rep2.ChurnTimeline) {
		t.Errorf("same -drillseed produced different timelines:\n%v\n%v",
			rep.ChurnTimeline, rep2.ChurnTimeline)
	}
}

// TestSummarize sanity-checks the percentile math on a known
// distribution.
func TestSummarize(t *testing.T) {
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	s := summarize(ms)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Max != 100 {
		t.Errorf("summarize = %+v, want p50=50 p95=95 p99=99 max=100", s)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
}
