// Command fleetdrill is the sustained churn drill for bschedd's
// coordinator mode: it boots an in-process fleet (real bschedd worker
// servers on ephemeral ports behind a real coordinator), drives
// concurrent /v1/grid load at it, and — on a seeded, reproducible
// timeline — kills workers abruptly and joins replacements while the
// load runs. The point is to measure what elasticity costs under
// sustained churn, not just whether one failover works:
//
//	fleetdrill -workers 3 -grids 400 -concurrency 16 -drillseed 7 \
//	           -churn-ops 6 -out drill.json
//
// The JSON report records grid tail latency (p50/p95/p99/max/mean), the
// degraded-row rate, how many recomputes the shared cache tier avoided,
// the executed churn timeline, journal integrity after the churn, and
// the coordinator's full counter registry. The churn timeline is a pure
// function of -drillseed (logical worker slots, not runtime addresses),
// so replaying the same seed replays the same kill/join schedule — the
// property CI's churn-smoke job asserts by diffing two runs.
//
// The drill ends with a deterministic phase regardless of seed: it
// kills the current owner of the first benchmark and issues one more
// grid, which must be served from the shared cache tier (the cells were
// promoted during the load phase) — proving recompute-avoidance under a
// worst-case death, then drains the coordinator cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/workload"
)

// churnOp is one planned membership event. AtMS and the action/slot
// pair are derived only from the drill seed, never from runtime state,
// so the plan is reproducible across runs and machines.
type churnOp struct {
	AtMS   int64  `json:"at_ms"`
	Action string `json:"action"` // "kill" or "join"
	Slot   string `json:"slot"`   // logical worker name: w0, w1, ...
}

// churnPlan derives the seeded kill/join timeline. It never plans the
// fleet below two live workers — the drill measures churn, not total
// fleet loss (the dead-fleet path has its own chaos test).
func churnPlan(seed int64, ops, initialWorkers int) []churnOp {
	rng := rand.New(rand.NewSource(seed))
	alive := make(map[string]bool, initialWorkers)
	for i := 0; i < initialWorkers; i++ {
		alive[fmt.Sprintf("w%d", i)] = true
	}
	nextSlot := initialWorkers
	plan := make([]churnOp, 0, ops)
	at := int64(0)
	for i := 0; i < ops; i++ {
		at += 150 + rng.Int63n(350)
		if len(alive) > 2 && rng.Intn(2) == 0 {
			slots := make([]string, 0, len(alive))
			for s := range alive {
				slots = append(slots, s)
			}
			sort.Strings(slots)
			s := slots[rng.Intn(len(slots))]
			delete(alive, s)
			plan = append(plan, churnOp{AtMS: at, Action: "kill", Slot: s})
			continue
		}
		s := fmt.Sprintf("w%d", nextSlot)
		nextSlot++
		alive[s] = true
		plan = append(plan, churnOp{AtMS: at, Action: "join", Slot: s})
	}
	return plan
}

// drillWorker is one in-process bschedd worker: a real server.Server on
// a real TCP port, killable abruptly (http.Server.Close severs every
// connection, indistinguishable from SIGKILL to the coordinator).
type drillWorker struct {
	slot string
	addr string
	srv  *server.Server
	hsrv *http.Server
}

func startDrillWorker(slot string) (*drillWorker, error) {
	srv, err := server.New(server.Config{})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := server.NewHTTPServer(srv.Handler(), time.Second)
	go func() { _ = hsrv.Serve(ln) }()
	return &drillWorker{slot: slot, addr: ln.Addr().String(), srv: srv, hsrv: hsrv}, nil
}

func (w *drillWorker) kill() { _ = w.hsrv.Close() }

// latencySummary is the grid-latency distribution in the report.
type latencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

func summarize(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		P50:  pick(0.50),
		P95:  pick(0.95),
		P99:  pick(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}

// journalReport is the post-churn journal integrity check: every line
// the coordinator journaled must parse back (the reader tolerates only
// a torn final line, and a clean drain leaves none).
type journalReport struct {
	RawLines int  `json:"raw_lines"`
	Parsed   int  `json:"parsed"`
	Intact   bool `json:"intact"`
}

// report is the drill's JSON output.
type report struct {
	Seed             int64            `json:"seed"`
	InitialWorkers   int              `json:"initial_workers"`
	FinalWorkers     int              `json:"final_workers"`
	Grids            int              `json:"grids"`
	Concurrency      int              `json:"concurrency"`
	CellsTotal       int              `json:"cells_total"`
	CellsOK          int              `json:"cells_ok"`
	CellsDegraded    int              `json:"cells_degraded"`
	DegradedRowRate  float64          `json:"degraded_row_rate"`
	LatencyMS        latencySummary   `json:"latency_ms"`
	RecomputeAvoided int64            `json:"recompute_avoided"`
	CacheHits        int64            `json:"cache_hits"`
	CacheLocalHits   int64            `json:"cache_local_hits"`
	CachePeerHits    int64            `json:"cache_peer_hits"`
	Joins            int64            `json:"joins"`
	Evictions        int64            `json:"evictions"`
	Failovers        int64            `json:"failovers"`
	ChurnTimeline    []churnOp        `json:"churn_timeline"`
	Journal          journalReport    `json:"journal"`
	CleanDrain       bool             `json:"clean_drain"`
	Counters         map[string]int64 `json:"counters"`
}

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("fleetdrill", flag.ContinueOnError)
	workers := fs.Int("workers", 3, "initial fleet size (3+ makes churn meaningful)")
	grids := fs.Int("grids", 400, "total /v1/grid requests to issue")
	concurrency := fs.Int("concurrency", 16, "concurrent grid requests in flight")
	seed := fs.Int64("drillseed", 1, "seed for the churn timeline (same seed = same kill/join schedule)")
	churnOps := fs.Int("churn-ops", 6, "number of seeded kill/join events")
	benchCount := fs.Int("benches", 4, "benchmarks per grid request (rotating through the workload)")
	configsFlag := fs.String("configs", "BS,TS,BS+LU4,BS+TrS", "comma-separated configuration names per grid")
	evictAfter := fs.Int("evict-after", 5, "coordinator: evict workers after this many failed probes")
	probeInterval := fs.Duration("probe-interval", 50*time.Millisecond, "coordinator probe cadence")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *workers < 3 {
		fmt.Fprintln(os.Stderr, "fleetdrill: -workers must be >= 3 (churn needs survivors)")
		return 1
	}

	var configs []string
	for _, c := range strings.Split(*configsFlag, ",") {
		if c = strings.TrimSpace(c); c != "" {
			configs = append(configs, c)
		}
	}

	// Boot the initial fleet.
	fleetMu := sync.Mutex{}
	bySlot := map[string]*drillWorker{}
	var initialAddrs []string
	for i := 0; i < *workers; i++ {
		w, err := startDrillWorker(fmt.Sprintf("w%d", i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetdrill:", err)
			return 1
		}
		bySlot[w.slot] = w
		initialAddrs = append(initialAddrs, w.addr)
	}
	defer func() {
		fleetMu.Lock()
		defer fleetMu.Unlock()
		for _, w := range bySlot {
			w.kill()
		}
	}()

	jnl, err := os.CreateTemp("", "fleetdrill-journal-*.jsonl")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill:", err)
		return 1
	}
	jnlPath := jnl.Name()
	jnl.Close()
	defer os.Remove(jnlPath)

	coord, err := fleet.New(fleet.Config{
		Workers:         initialAddrs,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    500 * time.Millisecond,
		RetryBackoff:    10 * time.Millisecond,
		HedgeAfter:      -1, // churn already exercises failover; hedging would blur attribution
		EvictAfterFails: *evictAfter,
		Attempts:        2 * (*workers + *churnOps),
		Journal:         jnlPath,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill:", err)
		return 1
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill:", err)
		return 1
	}
	chsrv := server.NewHTTPServer(coord.Handler(), time.Second)
	go func() { _ = chsrv.Serve(cln) }()
	coordURL := "http://" + cln.Addr().String()
	defer chsrv.Close()

	benches := workload.All()
	benchNames := make([]string, len(benches))
	for i, b := range benches {
		benchNames[i] = b.Name
	}

	// The churn executor fires the seeded plan on its wall-clock offsets
	// while the load runs. Joins go through the coordinator's public
	// HTTP endpoint — the same path an operator's tooling uses.
	plan := churnPlan(*seed, *churnOps, *workers)
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		start := time.Now()
		for _, op := range plan {
			if d := time.Duration(op.AtMS)*time.Millisecond - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			switch op.Action {
			case "kill":
				fleetMu.Lock()
				w := bySlot[op.Slot]
				fleetMu.Unlock()
				if w != nil {
					w.kill()
					fmt.Fprintf(os.Stderr, "fleetdrill: t=%dms kill %s (%s)\n", op.AtMS, op.Slot, w.addr)
				}
			case "join":
				w, err := startDrillWorker(op.Slot)
				if err != nil {
					fmt.Fprintf(os.Stderr, "fleetdrill: join %s: %v\n", op.Slot, err)
					continue
				}
				fleetMu.Lock()
				bySlot[op.Slot] = w
				fleetMu.Unlock()
				if err := postJoin(coordURL, w.addr); err != nil {
					fmt.Fprintf(os.Stderr, "fleetdrill: join %s: %v\n", op.Slot, err)
					continue
				}
				fmt.Fprintf(os.Stderr, "fleetdrill: t=%dms join %s (%s)\n", op.AtMS, op.Slot, w.addr)
			}
		}
	}()

	// The load phase: *grids requests over *concurrency lanes, each grid
	// a rotating window of benchmarks so every worker's shard sees
	// sustained traffic and the shared tier warms across the keyspace.
	var (
		mu        sync.Mutex
		latencies []float64
		cellsOK   int
		cellsBad  int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				names := make([]string, 0, *benchCount)
				for j := 0; j < *benchCount; j++ {
					names = append(names, benchNames[(g+j)%len(benchNames)])
				}
				ok, bad, ms := runGrid(coordURL, names, configs)
				mu.Lock()
				latencies = append(latencies, ms)
				cellsOK += ok
				cellsBad += bad
				mu.Unlock()
			}
		}()
	}
	for g := 0; g < *grids; g++ {
		work <- g
	}
	close(work)
	wg.Wait()
	<-churnDone

	// Deterministic final phase: kill the current owner of the first
	// benchmark and grid it again. Its cells were promoted into the
	// shared tier during the load phase, so the failover must avoid
	// recomputation — the property churn-smoke asserts.
	ownerAddr := coord.OwnerAddr(benchNames[0])
	fleetMu.Lock()
	for _, w := range bySlot {
		if w.addr == ownerAddr {
			w.kill()
			fmt.Fprintf(os.Stderr, "fleetdrill: final phase: killed owner %s (%s)\n", w.slot, w.addr)
		}
	}
	fleetMu.Unlock()
	ok, bad, ms := runGrid(coordURL, benchNames[:1], configs)
	mu.Lock()
	latencies = append(latencies, ms)
	cellsOK += ok
	cellsBad += bad
	mu.Unlock()

	// Clean drain, then check the journal survived the churn intact.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainErr := coord.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill: drain:", drainErr)
	}

	raw, err := os.ReadFile(jnlPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill:", err)
		return 1
	}
	rawLines := strings.Count(string(raw), "\n")
	records, err := exp.ReadJSONLines[fleet.CellRecord](jnlPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill: journal:", err)
		return 1
	}

	snap := coord.StatsSnapshot()
	total := cellsOK + cellsBad
	rep := report{
		Seed:             *seed,
		InitialWorkers:   *workers,
		FinalWorkers:     len(coord.WorkerAddrs()),
		Grids:            *grids + 1,
		Concurrency:      *concurrency,
		CellsTotal:       total,
		CellsOK:          cellsOK,
		CellsDegraded:    cellsBad,
		LatencyMS:        summarize(latencies),
		RecomputeAvoided: snap.Counters["fleet/recompute_avoided"],
		CacheHits:        snap.Counters["fleet/cache_hits"],
		CacheLocalHits:   snap.Counters["fleet/cache_local_hits"],
		CachePeerHits:    snap.Counters["fleet/cache_peer_hits"],
		Joins:            snap.Counters["fleet/joins"],
		Evictions:        snap.Counters["fleet/evictions"],
		Failovers:        snap.Counters["fleet/failovers"],
		ChurnTimeline:    plan,
		Journal: journalReport{
			RawLines: rawLines,
			Parsed:   len(records),
			Intact:   rawLines == len(records),
		},
		CleanDrain: drainErr == nil,
		Counters:   snap.Counters,
	}
	if total > 0 {
		rep.DegradedRowRate = float64(cellsBad) / float64(total)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fleetdrill:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"fleetdrill: %d grids, %d cells (%d degraded, rate %.4f), p50=%.0fms p99=%.0fms, recompute_avoided=%d, drain=%v\n",
		rep.Grids, total, cellsBad, rep.DegradedRowRate,
		rep.LatencyMS.P50, rep.LatencyMS.P99, rep.RecomputeAvoided, rep.CleanDrain)
	if !rep.CleanDrain || !rep.Journal.Intact {
		return 1
	}
	return 0
}

// postJoin admits addr into the fleet over the coordinator's public API.
func postJoin(coordURL, addr string) error {
	body, _ := json.Marshal(map[string]string{"addr": addr})
	resp, err := http.Post(coordURL+"/v1/fleet/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("join %s: status %d", addr, resp.StatusCode)
	}
	return nil
}

// runGrid issues one buffered grid request and tallies its cells.
func runGrid(coordURL string, benches, configs []string) (ok, degraded int, ms float64) {
	reqBody, _ := json.Marshal(server.GridRequest{Benches: benches, Configs: configs})
	start := time.Now()
	resp, err := http.Post(coordURL+"/v1/grid", "application/json", strings.NewReader(string(reqBody)))
	ms = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		return 0, len(benches) * len(configs), ms
	}
	defer resp.Body.Close()
	var grid server.GridResponse
	if err := json.NewDecoder(resp.Body).Decode(&grid); err != nil || resp.StatusCode != http.StatusOK {
		return 0, len(benches) * len(configs), ms
	}
	for _, cell := range grid.Cells {
		if cell.Error == "" && cell.Metrics != nil {
			ok++
		} else {
			degraded++
		}
	}
	return ok, degraded, ms
}
