package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The exit-code contract (0 clean, 1 usage/fatal, 2 degraded, 3
// verification failure) is asserted end-to-end: the test binary re-execs
// itself with PAPERBENCH_BE_MAIN=1, in which case TestMain runs realMain
// instead of the test suite.

func TestMain(m *testing.M) {
	if os.Getenv("PAPERBENCH_BE_MAIN") == "1" {
		os.Exit(realMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// runSelf re-executes the test binary as paperbench and returns its exit
// code plus captured output.
func runSelf(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PAPERBENCH_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return code, stdout.String(), stderr.String()
}

func TestExitCodeCleanStaticTable(t *testing.T) {
	code, out, _ := runSelf(t, "-table", "3")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if !strings.Contains(out, "Table 3") {
		t.Errorf("missing Table 3 output:\n%s", out)
	}
}

func TestExitCodeCleanGrid(t *testing.T) {
	code, out, _ := runSelf(t, "-table", "4", "-bench", "tomcatv", "-verify")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if !strings.Contains(out, "tomcatv") {
		t.Errorf("missing tomcatv row:\n%s", out)
	}
}

func TestExitCodeUsage(t *testing.T) {
	if code, _, _ := runSelf(t, "-table", "42"); code != 1 {
		t.Errorf("unknown table: exit code %d, want 1", code)
	}
	if code, _, _ := runSelf(t, "-no-such-flag"); code != 1 {
		t.Errorf("bad flag: exit code %d, want 1", code)
	}
	if code, _, _ := runSelf(t, "-bench", "no-such-benchmark"); code != 1 {
		t.Errorf("unknown benchmark: exit code %d, want 1", code)
	}
}

// TestExitCodeDegraded injects a deterministic fault into one cell and
// asserts the run exits 2 while still printing partial tables.
func TestExitCodeDegraded(t *testing.T) {
	code, out, errOut := runSelf(t, "-table", "4", "-bench", "tomcatv",
		"-faultspec", "core/compile=error@1")
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (degraded)\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "degraded") || !strings.Contains(errOut, "tomcatv") {
		t.Errorf("stderr missing degradation report:\n%s", errOut)
	}
	if !strings.Contains(out, "----") {
		t.Errorf("degraded run did not render a partial table:\n%s", out)
	}
}

// TestExitCodeVerificationFailure injects a fault typed as a
// verification failure and asserts the stronger exit code 3.
func TestExitCodeVerificationFailure(t *testing.T) {
	code, _, errOut := runSelf(t, "-table", "4", "-bench", "tomcatv",
		"-verify", "-faultspec", "verify/func=error@1")
	if code != 3 {
		t.Fatalf("exit code %d, want 3 (verification failure)\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "verify") {
		t.Errorf("stderr does not mention the verification failure:\n%s", errOut)
	}
}

// TestJournalAndResumeFlags drives -journal/-resume end-to-end: an
// injured run journals its healthy cells, the resumed run exits 0 and
// prints the same table as a clean run.
func TestJournalAndResumeFlags(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "cells.jsonl")

	_, want, _ := runSelf(t, "-table", "8", "-bench", "tomcatv,DYFESM", "-verify")

	code, _, _ := runSelf(t, "-table", "8", "-bench", "tomcatv,DYFESM", "-verify",
		"-journal", journal, "-faultspec", "core/compile|tomcatv=error")
	if code != 2 {
		t.Fatalf("injured run: exit code %d, want 2", code)
	}
	code, got, _ := runSelf(t, "-table", "8", "-bench", "tomcatv,DYFESM", "-verify",
		"-journal", journal, "-resume")
	if code != 0 {
		t.Fatalf("resumed run: exit code %d, want 0", code)
	}
	if got != want {
		t.Errorf("resumed table differs from clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestOutFlagWritesAtomically checks -out lands the same bytes a stdout
// run produces, via the temp+rename path.
func TestOutFlagWritesAtomically(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tables.txt")
	_, want, _ := runSelf(t, "-table", "2")
	code, stdout, _ := runSelf(t, "-table", "2", "-out", out)
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if stdout != "" {
		t.Errorf("-out run still wrote to stdout: %q", stdout)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("-out content differs from stdout run")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("output dir holds %d entries, want 1 (no temp droppings)", len(entries))
	}
}

// TestGenModeDeterministic drives the generated-corpus mode end to end:
// -gen N -genseed S mints the corpus, runs the reduced grid and renders
// the per-stratum table. Two runs with the same seed must print the same
// bytes; the flag is exclusive with the static table modes.
func TestGenModeDeterministic(t *testing.T) {
	code, out, errOut := runSelf(t, "-gen", "30", "-genseed", "7", "-verify")
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "Generated corpus") || !strings.Contains(out, "all") {
		t.Errorf("missing stratum table:\n%s", out)
	}
	code2, out2, _ := runSelf(t, "-gen", "30", "-genseed", "7", "-verify")
	if code2 != 0 {
		t.Fatalf("second run: exit code %d, want 0", code2)
	}
	if out != out2 {
		t.Errorf("same seed produced different tables\n--- first ---\n%s\n--- second ---\n%s", out, out2)
	}

	if code, _, _ := runSelf(t, "-gen", "5", "-table", "4"); code != 1 {
		t.Errorf("-gen with -table: exit code %d, want 1", code)
	}
	if code, _, _ := runSelf(t, "-gen", "5", "-json"); code != 1 {
		t.Errorf("-gen with -json: exit code %d, want 1", code)
	}
}

// TestInterruptDrainsGracefully sends SIGINT to a slowed-down grid run
// and asserts the signal cancels the run instead of killing it: the
// process exits 2 (degraded) through the normal reporting path, the
// canceled cells are reported on stderr, and the journal holds only
// well-formed lines — the flush completed, nothing died mid-write.
func TestInterruptDrainsGracefully(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "cells.jsonl")
	cmd := exec.Command(os.Args[0],
		"-table", "4", "-bench", "tomcatv", "-jobs", "2",
		"-journal", journal,
		"-faultspec", "exp/cell=delay:250ms")
	cmd.Env = append(os.Environ(), "PAPERBENCH_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until at least one cell has landed in the journal so the
	// interrupt arrives mid-grid, then signal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(journal); err == nil && bytes.Contains(b, []byte("\n")) {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("no journal entry appeared within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	err := cmd.Wait()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if code != 2 {
		t.Fatalf("interrupted run exited %d, want 2 (degraded)\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "canceled") {
		t.Errorf("stderr does not report canceled cells:\n%s", stderr.String())
	}

	// Every journal line parses: the engine flushed cleanly on the way out.
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("journal is empty after interrupt")
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			t.Errorf("journal line %d is torn: %q: %v", i, line, err)
		}
	}
}

// TestScaleReportMode drives -scalereport end-to-end on a reduced grid:
// exit 0, a human table on stdout, and a JSON artifact that parses and
// names at least one attributed resource per width.
func TestScaleReportMode(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "scale_report.json")
	code, out, errOut := runSelf(t, "-scalereport", "-bench", "tomcatv",
		"-scalereport-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "Parallel scaling report") {
		t.Errorf("stdout missing report header:\n%s", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var rep struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		Widths     []struct {
			Jobs        int                `json:"jobs"`
			Attribution map[string]float64 `json:"attribution_seconds"`
		} `json:"widths"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(rep.Widths) == 0 || rep.Widths[0].Jobs != 1 {
		t.Fatalf("artifact widths malformed: %+v", rep.Widths)
	}
	for _, w := range rep.Widths {
		if len(w.Attribution) == 0 {
			t.Errorf("jobs=%d carries no attribution", w.Jobs)
		}
	}

	// Mode exclusivity: -scalereport cannot combine with -json.
	if code, _, _ := runSelf(t, "-scalereport", "-json"); code != 1 {
		t.Errorf("-scalereport -json: exit code %d, want 1", code)
	}
}
