// Command paperbench regenerates the paper's tables: it compiles every
// workload program under all sixteen scheduling/optimization
// configurations, simulates each on the Alpha 21164 model, verifies that
// all configurations compute identical program outputs, and prints the
// requested tables. The grid executes on the cell-parallel engine: every
// (benchmark, configuration) cell is an independent unit of work.
//
// Usage:
//
//	paperbench [-table N] [-bench name,name,...] [-jobs N] [-json] [-v]
//	           [-tracefile out.json] [-metrics out.txt]
//	           [-cpuprofile out.pb.gz] [-memprofile out.pb.gz] [-gotrace out.trace]
//
// With no flags it prints every table (1-9). -jobs bounds concurrent
// cells (default GOMAXPROCS); -json emits the raw grid — per-cell metrics,
// phase timings and observability counters — instead of rendered tables;
// -v streams live cells-done/total progress to stderr.
//
// Observability: -tracefile records one span per grid cell (with nested
// compile-phase and simulation spans) on one lane per worker and writes
// Chrome trace-event JSON renderable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. -metrics dumps the merged compiler/simulator counter
// registry as Prometheus-style text. -cpuprofile/-memprofile write pprof
// profiles and -gotrace a Go execution trace of the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

// prof, tracer and traceFilePath are package-level so fatal can flush a
// partial trace and stop profiles before exiting.
var (
	prof          *obs.Profiles
	tracer        *obs.Tracer
	traceFilePath string
)

func main() {
	table := flag.Int("table", 0, "print only table N (1-9); 0 = all")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 17)")
	ext := flag.Bool("ext", false, "also run the extension experiments (E1 superscalar, E2 policies, E3 prefetching)")
	jobs := flag.Int("jobs", 0, "max concurrently executing grid cells (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (per-cell metrics, phase timings + counters) instead of tables")
	verbose := flag.Bool("v", false, "print live per-cell progress")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON timeline of the grid run (Perfetto)")
	metricsFile := flag.String("metrics", "", "write the merged counter registry as a Prometheus-style text dump")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	goTrace := flag.String("gotrace", "", "write a Go execution trace (inspect with go tool trace)")
	flag.Parse()

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	var err error
	prof, err = obs.StartProfiles(*cpuProfile, *memProfile, *goTrace)
	if err != nil {
		fatal(err)
	}
	defer prof.Stop()
	if *traceFile != "" {
		tracer = obs.NewTracer()
		traceFilePath = *traceFile
	}
	defer flushTrace()

	start := time.Now()
	opt := exp.Options{
		Jobs:    *jobs,
		Tracer:  tracer,
		Observe: *jsonOut || *metricsFile != "",
	}
	if *verbose {
		opt.Progress = func(done, total int, bench, config string) {
			fmt.Fprintf(os.Stderr, "[%6.1fs] %3d/%d %s %s\n",
				time.Since(start).Seconds(), done, total, bench, config)
		}
	}

	if *ext && *table == 0 {
		if *jsonOut {
			for _, f := range []func([]string, ...exp.Options) ([]exp.ExtResult, error){exp.RunE1, exp.RunE2, exp.RunE3} {
				res, err := f(names, opt)
				if err != nil {
					fatal(err)
				}
				if err := exp.WriteExtJSON(os.Stdout, res); err != nil {
					fatal(err)
				}
			}
			return
		}
		for _, f := range []func([]string, ...exp.Options) (*exp.Table, error){exp.TableE1, exp.TableE2, exp.TableE3} {
			t, err := f(names, opt)
			if err != nil {
				fatal(err)
			}
			t.Write(os.Stdout)
		}
		return
	}

	// Static tables need no simulation.
	static := map[int]func() *exp.Table{1: exp.Table1, 2: exp.Table2, 3: exp.Table3}
	if f, ok := static[*table]; ok {
		f().Write(os.Stdout)
		return
	}

	suite, err := exp.RunGrid(names, opt)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "grid complete in %.1fs\n", time.Since(start).Seconds())
	}

	if *metricsFile != "" {
		if err := writeMetrics(suite, *metricsFile); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if err := suite.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	dynamic := map[int]func() *exp.Table{
		4: suite.Table4, 5: suite.Table5, 6: suite.Table6,
		7: suite.Table7, 8: suite.Table8, 9: suite.Table9,
	}
	if *table != 0 {
		f, ok := dynamic[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "paperbench: no table %d\n", *table)
			os.Exit(2)
		}
		f().Write(os.Stdout)
		return
	}
	exp.Table1().Write(os.Stdout)
	exp.Table2().Write(os.Stdout)
	exp.Table3().Write(os.Stdout)
	for _, t := range suite.Tables() {
		t.Write(os.Stdout)
	}
}

// writeMetrics dumps the suite's merged observability snapshot in the
// Prometheus text exposition format.
func writeMetrics(suite *exp.Suite, path string) error {
	snap := suite.MergedObs()
	if snap == nil {
		return fmt.Errorf("no counters collected (internal error: -metrics should enable observation)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(f, "paperbench_"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// flushTrace writes the Chrome trace once; on a fatal exit a partial
// trace of the completed cells still lands on disk.
func flushTrace() {
	if tracer == nil || traceFilePath == "" {
		return
	}
	f, err := os.Create(traceFilePath)
	if err == nil {
		err = tracer.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench: writing trace:", err)
	}
	tracer = nil
}

func fatal(err error) {
	flushTrace()
	prof.Stop()
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
