// Command paperbench regenerates the paper's tables: it compiles every
// workload program under all sixteen scheduling/optimization
// configurations, simulates each on the Alpha 21164 model, verifies that
// all configurations compute identical program outputs, and prints the
// requested tables.
//
// Usage:
//
//	paperbench [-table N] [-bench name,name,...] [-v]
//
// With no flags it prints every table (1-9).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "print only table N (1-9); 0 = all")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 17)")
	ext := flag.Bool("ext", false, "also run the extension experiments (E1 superscalar, E2 policies, E3 prefetching)")
	verbose := flag.Bool("v", false, "print per-benchmark progress")
	flag.Parse()

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	if *ext && *table == 0 {
		for _, f := range []func([]string) (*exp.Table, error){exp.TableE1, exp.TableE2, exp.TableE3} {
			t, err := f(names)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(1)
			}
			t.Write(os.Stdout)
		}
		return
	}

	// Static tables need no simulation.
	static := map[int]func() *exp.Table{1: exp.Table1, 2: exp.Table2, 3: exp.Table3}
	if f, ok := static[*table]; ok {
		f().Write(os.Stdout)
		return
	}

	start := time.Now()
	progress := func(string) {}
	if *verbose {
		progress = func(b string) {
			fmt.Fprintf(os.Stderr, "[%6.1fs] %s done\n", time.Since(start).Seconds(), b)
		}
	}
	suite, err := exp.Run(names, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "grid complete in %.1fs\n", time.Since(start).Seconds())
	}

	dynamic := map[int]func() *exp.Table{
		4: suite.Table4, 5: suite.Table5, 6: suite.Table6,
		7: suite.Table7, 8: suite.Table8, 9: suite.Table9,
	}
	if *table != 0 {
		f, ok := dynamic[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "paperbench: no table %d\n", *table)
			os.Exit(2)
		}
		f().Write(os.Stdout)
		return
	}
	exp.Table1().Write(os.Stdout)
	exp.Table2().Write(os.Stdout)
	exp.Table3().Write(os.Stdout)
	for _, t := range suite.Tables() {
		t.Write(os.Stdout)
	}
}
