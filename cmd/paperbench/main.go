// Command paperbench regenerates the paper's tables: it compiles every
// workload program under all sixteen scheduling/optimization
// configurations, simulates each on the Alpha 21164 model, verifies that
// all configurations compute identical program outputs, and prints the
// requested tables. The grid executes on the cell-parallel engine: every
// (benchmark, configuration) cell is an independent, fault-isolated unit
// of work — a panicking or hung cell degrades its table rows instead of
// killing the run.
//
// Usage:
//
//	paperbench [-table N] [-bench name,name,...] [-jobs N] [-json] [-v]
//	           [-verify] [-cell-timeout d] [-journal cells.jsonl] [-resume]
//	           [-out file] [-tracefile out.json] [-metrics out.txt]
//	           [-cpuprofile out.pb.gz] [-memprofile out.pb.gz] [-gotrace out.trace]
//	           [-scalereport [-scalereport-json scale_report.json]]
//
// With no flags it prints every table (1-9). -jobs bounds concurrent
// cells (default GOMAXPROCS); -json emits the raw grid — per-cell metrics,
// phase timings and observability counters — instead of rendered tables;
// -v streams live cells-done/total progress to stderr.
//
// Robustness: -verify runs the internal/verify invariant checkers (IR,
// DAG, schedule, register allocation) between every compile phase of
// every cell. -cell-timeout bounds each cell's wall clock. -journal
// appends each finished cell to a JSONL journal as it completes, and
// -resume replays the journal's successful cells instead of recomputing
// them. -out writes the rendered output to a file atomically
// (temp+rename) instead of stdout. -faultspec/-faultseed install a
// deterministic fault-injection plan (for chaos testing the pipeline).
//
// Exit codes: 0 = clean run; 1 = usage or fatal error; 2 = the grid
// completed degraded (some cells failed; tables/JSON cover the healthy
// cells); 3 = at least one failure was a verification failure (invariant
// or output-checksum violation) — the most serious outcome, since it
// means the compiler produced a wrong result rather than crashing.
//
// Observability: -tracefile records one span per grid cell (with nested
// compile-phase and simulation spans) on one lane per worker and writes
// Chrome trace-event JSON renderable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. -metrics dumps the merged compiler/simulator counter
// registry as Prometheus-style text. -cpuprofile/-memprofile write pprof
// profiles and -gotrace a Go execution trace of the whole run.
// -scalereport sweeps the grid over jobs=1,2,4,…,GOMAXPROCS with
// contention attribution enabled and prints per-width parallel
// efficiency plus an Amdahl-style breakdown of the serialization by
// resource (task-queue starvation, aggregator, machine pool, front-end
// cache, compute dilation), writing the same data as JSON to
// -scalereport-json.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/hlirgen"
	"repro/internal/obs"
	"repro/internal/verify"
)

// prof, tracer and traceFilePath are package-level so fail can flush a
// partial trace and stop profiles before exiting.
var (
	prof          *obs.Profiles
	tracer        *obs.Tracer
	traceFilePath string
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	table := fs.Int("table", 0, "print only table N (1-9); 0 = all")
	benchList := fs.String("bench", "", "comma-separated benchmark subset (default: all 17)")
	ext := fs.Bool("ext", false, "also run the extension experiments (E1 superscalar, E2 policies, E3 prefetching)")
	genN := fs.Int("gen", 0, "run the reduced grid over N generated programs (internal/hlirgen) and print per-stratum statistics instead of the paper tables")
	genSeed := fs.Uint64("genseed", 1, "corpus seed for -gen; the same (N, seed) reproduces the same corpus and table byte for byte")
	scaleReport := fs.Bool("scalereport", false, "run the grid at jobs=1,2,4,...,GOMAXPROCS and print a parallel-scaling report with contention attribution")
	scaleJSON := fs.String("scalereport-json", "scale_report.json", "JSON artifact path for -scalereport ('' = skip)")
	jobs := fs.Int("jobs", 0, "max concurrently executing grid cells (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (per-cell metrics, phase timings + counters) instead of tables")
	verbose := fs.Bool("v", false, "print live per-cell progress")
	verifyFlag := fs.Bool("verify", false, "run structural invariant verifiers between every compile phase")
	cellTimeout := fs.Duration("cell-timeout", 0, "wall-clock bound per grid cell (0 = none)")
	journal := fs.String("journal", "", "append each finished cell to this JSONL journal")
	resume := fs.Bool("resume", false, "replay cells already in -journal instead of recomputing them")
	outFile := fs.String("out", "", "write output to this file atomically (temp+rename) instead of stdout")
	faultSpec := fs.String("faultspec", "", "deterministic fault-injection plan, e.g. 'regalloc/allocate=error@1;sim/run=delay:50ms~0.1'")
	faultSeed := fs.Int64("faultseed", 1, "seed for probabilistic fault-injection decisions")
	traceFile := fs.String("tracefile", "", "write a Chrome trace-event JSON timeline of the grid run (Perfetto)")
	metricsFile := fs.String("metrics", "", "write the merged counter registry as a Prometheus-style text dump")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit")
	goTrace := fs.String("gotrace", "", "write a Go execution trace (inspect with go tool trace)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	if *faultSpec != "" {
		plan, err := faultinject.ParseSpec(*faultSeed, *faultSpec)
		if err != nil {
			return fail(err)
		}
		faultinject.Enable(plan)
		defer faultinject.Disable()
	}

	var err error
	prof, err = obs.StartProfiles(*cpuProfile, *memProfile, *goTrace)
	if err != nil {
		return fail(err)
	}
	defer prof.Stop()
	if *traceFile != "" {
		tracer = obs.NewTracer()
		traceFilePath = *traceFile
	}
	defer flushTrace()

	// Output goes to stdout, or — with -out — through a buffer that is
	// committed atomically at the end so a crash never leaves a torn file.
	w := io.Writer(os.Stdout)
	var outBuf *bytes.Buffer
	if *outFile != "" {
		outBuf = &bytes.Buffer{}
		w = outBuf
	}
	commit := func(code int) int {
		if outBuf != nil {
			if err := exp.WriteFileAtomic(*outFile, outBuf.Bytes()); err != nil {
				return fail(err)
			}
		}
		return code
	}

	// SIGINT/SIGTERM cancel the grid instead of killing the process: the
	// engine stops in-flight cells at their next phase boundary, skips
	// queued cells, flushes the journal, and the run exits through the
	// degraded-grid path (code 2) with every canceled cell reported —
	// never mid-write. A second signal kills the process the default way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	start := time.Now()
	opt := exp.Options{
		Ctx:         ctx,
		Jobs:        *jobs,
		Tracer:      tracer,
		Observe:     *jsonOut || *metricsFile != "",
		Verify:      *verifyFlag,
		CellTimeout: *cellTimeout,
		Journal:     *journal,
		Resume:      *resume,
	}
	if tracer != nil {
		// Tracing implies attribution: the worker-state lanes (what each
		// worker waited on) ride along in the same trace file, epoch-
		// aligned with the span lanes.
		opt.Contention = obs.NewContentionAt(tracer.Epoch(), 0)
	}
	if *verbose {
		opt.Progress = func(done, total int, bench, config string) {
			fmt.Fprintf(os.Stderr, "[%6.1fs] %3d/%d %s %s\n",
				time.Since(start).Seconds(), done, total, bench, config)
		}
	}

	if *scaleReport {
		if *jsonOut || *ext || *table != 0 || *genN > 0 {
			fmt.Fprintln(os.Stderr, "paperbench: -scalereport is a measurement mode; it cannot combine with -json, -ext, -table or -gen")
			return 1
		}
		return commit(runScaleReport(w, names, opt, *scaleJSON))
	}

	if *genN > 0 {
		if *jsonOut || *ext || *table != 0 || *benchList != "" {
			fmt.Fprintln(os.Stderr, "paperbench: -gen is a statistics mode; it cannot combine with -json, -ext, -table or -bench")
			return 1
		}
		return commit(runGenerated(w, *genN, *genSeed, opt, *verbose, start))
	}

	if *ext && *table == 0 {
		code := 0
		if *jsonOut {
			for _, f := range []func([]string, ...exp.Options) ([]exp.ExtResult, error){exp.RunE1, exp.RunE2, exp.RunE3} {
				res, err := f(names, opt)
				if err != nil {
					var ge *exp.GridError
					if !errors.As(err, &ge) {
						return fail(err)
					}
					code = maxCode(code, reportDegraded(ge))
				}
				if err := exp.WriteExtJSON(w, res); err != nil {
					return fail(err)
				}
			}
			return commit(code)
		}
		for _, f := range []func([]string, ...exp.Options) (*exp.Table, error){exp.TableE1, exp.TableE2, exp.TableE3} {
			t, err := f(names, opt)
			if err != nil {
				var ge *exp.GridError
				if !errors.As(err, &ge) {
					return fail(err)
				}
				code = maxCode(code, reportDegraded(ge))
				continue
			}
			t.Write(w)
		}
		return commit(code)
	}

	// Static tables need no simulation.
	static := map[int]func() *exp.Table{1: exp.Table1, 2: exp.Table2, 3: exp.Table3}
	if f, ok := static[*table]; ok {
		f().Write(w)
		return commit(0)
	}
	dynamicTable := *table >= 4 && *table <= 9
	if *table != 0 && !dynamicTable {
		fmt.Fprintf(os.Stderr, "paperbench: no table %d\n", *table)
		return 1
	}

	suite, err := exp.RunGrid(names, opt)
	code := 0
	if err != nil {
		var ge *exp.GridError
		if !errors.As(err, &ge) || suite == nil {
			return fail(err)
		}
		// Degraded: every healthy cell is still in the suite; render
		// partial tables and report the injured cells on stderr.
		code = reportDegraded(ge)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "grid complete in %.1fs\n", time.Since(start).Seconds())
	}

	if *metricsFile != "" {
		if err := writeMetrics(suite, *metricsFile); err != nil {
			return fail(err)
		}
	}

	if *jsonOut {
		if err := suite.WriteJSON(w); err != nil {
			return fail(err)
		}
		return commit(code)
	}

	dynamic := map[int]func() *exp.Table{
		4: suite.Table4, 5: suite.Table5, 6: suite.Table6,
		7: suite.Table7, 8: suite.Table8, 9: suite.Table9,
	}
	if dynamicTable {
		dynamic[*table]().Write(w)
		return commit(code)
	}
	exp.Table1().Write(w)
	exp.Table2().Write(w)
	exp.Table3().Write(w)
	for _, t := range suite.Tables() {
		t.Write(w)
	}
	return commit(code)
}

// runScaleReport is the -scalereport measurement mode: sweep the grid
// over worker widths, attribute each width's shortfall from ideal
// speedup to a named resource, print the human table, and drop the JSON
// artifact for CI and trend tracking.
func runScaleReport(w io.Writer, names []string, opt exp.Options, jsonPath string) int {
	rep, err := exp.RunScaleReport(names, opt)
	if err != nil {
		var ge *exp.GridError
		if !errors.As(err, &ge) {
			return fail(err)
		}
		// A degraded grid poisons the timing: report and bail without
		// pretending the numbers mean anything.
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return reportDegraded(ge)
	}
	rep.WriteText(w)
	if jsonPath != "" {
		if err := rep.WriteJSONFile(jsonPath); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", jsonPath)
	}
	return 0
}

// runGenerated is the -gen statistics mode: mint a seeded corpus, run
// the reduced five-configuration grid over it, and print the per-stratum
// balanced-vs-list speedup table. The output is deterministic in
// (n, seed) — the corpus-reproducibility contract the docs promise.
func runGenerated(w io.Writer, n int, seed uint64, opt exp.Options, verbose bool, start time.Time) int {
	items, err := hlirgen.Corpus(seed, n)
	if err != nil {
		return fail(err)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "[%6.1fs] generated %d programs (seed %d)\n",
			time.Since(start).Seconds(), len(items), seed)
	}
	suite, err := exp.RunGenerated(items, opt)
	code := 0
	if err != nil {
		var ge *exp.GridError
		if !errors.As(err, &ge) || suite == nil {
			return fail(err)
		}
		code = reportDegraded(ge)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "grid complete in %.1fs\n", time.Since(start).Seconds())
	}
	exp.StratTable(suite, items).Write(w)
	return code
}

// reportDegraded summarizes a degraded grid on stderr and returns the
// exit code it warrants: 3 when any failure is a verification failure
// (the compiler produced a wrong result), 2 otherwise.
func reportDegraded(ge *exp.GridError) int {
	fmt.Fprintf(os.Stderr, "paperbench: grid completed degraded: %d cells failed\n", len(ge.Cells))
	code := 2
	for _, ce := range ge.Cells {
		fmt.Fprintf(os.Stderr, "  %v\n", ce)
		if verify.IsVerification(ce.Err) {
			code = 3
		}
	}
	return code
}

func maxCode(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeMetrics dumps the suite's merged observability snapshot in the
// Prometheus text exposition format, atomically.
func writeMetrics(suite *exp.Suite, path string) error {
	snap := suite.MergedObs()
	if snap == nil {
		return fmt.Errorf("no counters collected (internal error: -metrics should enable observation)")
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf, "paperbench_"); err != nil {
		return err
	}
	return exp.WriteFileAtomic(path, buf.Bytes())
}

// flushTrace writes the Chrome trace once; on a fatal exit a partial
// trace of the completed cells still lands on disk.
func flushTrace() {
	if tracer == nil || traceFilePath == "" {
		return
	}
	f, err := os.Create(traceFilePath)
	if err == nil {
		err = tracer.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench: writing trace:", err)
	}
	tracer = nil
}

func fail(err error) int {
	flushTrace()
	prof.Stop()
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	return 1
}
