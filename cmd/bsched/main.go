// Command bsched compiles and simulates one workload benchmark under
// selected configurations and prints a detailed cycle breakdown: total
// cycles, dynamic instructions, load and fixed-latency interlocks, fetch
// and branch stalls, spill traffic and cache behaviour. It is the
// inspection companion to cmd/paperbench.
//
// Usage:
//
//	bsched [-dump] [-verify] [-file prog.hlir] [-cpuprofile out.pb.gz]
//	       [-memprofile out.pb.gz] [-gotrace out.trace] <benchmark> [config ...]
//
// Configs are comma-free names like BS, TS, BS+LU4, TS+TrS+LU8,
// BS+LA+TrS+LU8. With none given, a representative set runs. With -file,
// the program is parsed from the given HLIR source file (the notation of
// the paper's figures — see examples/frontend) instead of the built-in
// workload; array contents start zeroed. -verify runs the structural
// invariant checkers (internal/verify) between every compile phase.
//
// Exit codes: 0 = clean; 1 = usage or fatal error; 3 = a verification
// failure — an invariant violation under -verify, or a simulated output
// checksum that differs from the reference interpreter's.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/hlir"
	"repro/internal/obs"
	"repro/internal/verify"
	"repro/internal/workload"
)

// prof is package-level so exit can stop a running CPU profile before
// terminating.
var prof *obs.Profiles

// exit stops any running profiles, then terminates with code.
func exit(code int) {
	prof.Stop()
	os.Exit(code)
}

func main() {
	dump := flag.Bool("dump", false, "print the scheduled machine code")
	verifyFlag := flag.Bool("verify", false, "run structural invariant verifiers between every compile phase")
	file := flag.String("file", "", "run a program parsed from this HLIR source file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	goTrace := flag.String("gotrace", "", "write a Go execution trace (inspect with go tool trace)")
	flag.Parse()
	var err error
	prof, err = obs.StartProfiles(*cpuProfile, *memProfile, *goTrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsched:", err)
		os.Exit(1)
	}
	defer prof.Stop()
	args := flag.Args()
	if *file == "" && len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: bsched [-dump] <benchmark> [config ...]")
		fmt.Fprintln(os.Stderr, "benchmarks:")
		for _, b := range workload.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", b.Name, b.Description)
		}
		exit(1)
	}
	var build func() (*hlir.Program, *core.Data)
	var title, traits string
	configArgs := args
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsched:", err)
			exit(1)
		}
		prog, err := hlir.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsched:", err)
			exit(1)
		}
		title, traits = prog.Name, "user program from "+*file
		build = func() (*hlir.Program, *core.Data) { return prog.Clone(), core.NewData() }
	} else {
		b, err := workload.ByName(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsched:", err)
			exit(1)
		}
		title, traits = b.Name+" — "+b.Description, b.Traits
		build = b.Build
		configArgs = args[1:]
	}
	var configs []core.Config
	if len(configArgs) > 0 {
		for _, s := range configArgs {
			cfg, err := core.ParseConfig(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bsched:", err)
				exit(1)
			}
			configs = append(configs, cfg)
		}
	} else {
		configs = exp.Cells()
	}

	p, d := build()
	want, err := core.Reference(p, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsched: reference:", err)
		exit(1)
	}

	fmt.Println(title)
	fmt.Printf("traits: %s\n\n", traits)
	fmt.Printf("%-14s %10s %10s %9s %9s %8s %8s %9s %7s %7s\n",
		"config", "cycles", "instrs", "loadIL", "fixedIL", "fetch", "brStall", "spills", "L1D%", "CPI")
	mismatched := false
	for _, cfg := range configs {
		c, err := core.CompileWithOptions(p, cfg, d, nil, nil, core.Options{Verify: *verifyFlag})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsched: %s: %v\n", cfg.Name(), err)
			if verify.IsVerification(err) {
				exit(3)
			}
			exit(1)
		}
		met, got, err := core.Execute(c, d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsched: %s: %v\n", cfg.Name(), err)
			exit(1)
		}
		status := ""
		if got != want {
			status = "  CHECKSUM MISMATCH"
			mismatched = true
		}
		cpi := float64(met.Cycles) / float64(met.Instrs)
		fmt.Printf("%-14s %10d %10d %9d %9d %8d %8d %9d %6.1f%% %7.2f%s\n",
			cfg.Name(), met.Cycles, met.Instrs, met.LoadInterlock, met.FixedInterlock,
			met.FetchStall, met.BranchStall, met.SpillStores+met.SpillRestores,
			100*met.L1DHitRate(), cpi, status)
		if *dump {
			fmt.Println(c.Fn)
		}
	}
	// A checksum mismatch is a verification failure: the full breakdown
	// was printed so every mismatching config is visible, then exit 3.
	if mismatched {
		exit(3)
	}
}
