package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hlir"
	"repro/internal/workload"
)

func TestMain(m *testing.M) {
	if os.Getenv("CORPUSGEN_BE_MAIN") == "1" {
		os.Exit(realMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CORPUSGEN_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return code, stdout.String(), stderr.String()
}

// TestCorpusOnDiskIsDeterministic mints the same corpus twice into two
// directories and asserts every file — programs and manifest — is byte
// identical, and that the manifest alone regenerates the same programs
// via workload.LoadManifest.
func TestCorpusOnDiskIsDeterministic(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	for _, dir := range []string{dirA, dirB} {
		code, out, errOut := runSelf(t, "-n", "35", "-seed", "11", "-dir", dir, "-stats")
		if code != 0 {
			t.Fatalf("exit code %d, want 0\nstderr:\n%s", code, errOut)
		}
		if !strings.Contains(out, "corpus: 35 programs, seed 11") {
			t.Errorf("missing summary line:\n%s", out)
		}
	}

	entriesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(entriesA) != 36 { // 35 programs + manifest.jsonl
		t.Fatalf("dir holds %d entries, want 36", len(entriesA))
	}
	for _, e := range entriesA {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("file %s missing from second run: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between runs", e.Name())
		}
	}

	// Every .hlir file on disk parses, and the manifest regenerates the
	// same program text.
	benches, items, err := workload.LoadManifest(filepath.Join(dirA, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 35 {
		t.Fatalf("manifest regenerated %d benchmarks, want 35", len(benches))
	}
	for _, it := range items {
		disk, err := os.ReadFile(filepath.Join(dirA, it.Prog.Name+".hlir"))
		if err != nil {
			t.Fatal(err)
		}
		if string(disk) != it.Prog.String() {
			t.Fatalf("%s: on-disk text differs from manifest regeneration", it.Prog.Name)
		}
		if _, err := hlir.Parse(string(disk)); err != nil {
			t.Fatalf("%s does not parse: %v", it.Prog.Name, err)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runSelf(t, "-n", "0"); code != 1 {
		t.Errorf("-n 0: exit code %d, want 1", code)
	}
	if code, _, _ := runSelf(t, "-no-such-flag"); code != 1 {
		t.Errorf("bad flag: exit code %d, want 1", code)
	}
}

// TestSummaryOnlyMode: without -dir nothing is written anywhere.
func TestSummaryOnlyMode(t *testing.T) {
	code, out, _ := runSelf(t, "-n", "12", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if !strings.Contains(out, "corpus: 12 programs, seed 3") {
		t.Errorf("missing summary:\n%s", out)
	}
	if strings.Contains(out, "wrote") {
		t.Errorf("summary-only run claims to have written files:\n%s", out)
	}
}
