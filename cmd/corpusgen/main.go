// Command corpusgen mints a stratified corpus of generated HLIR programs
// (internal/hlirgen) onto disk: one parseable .hlir source file per
// program plus a manifest.jsonl recording each program's seed and stratum
// labels (loop depth, reuse class, ILP estimate). The corpus is a pure
// function of (-n, -seed): rerunning corpusgen with the same flags
// reproduces every file byte for byte, and the manifest alone is enough
// to regenerate the programs (workload.LoadManifest), so corpora need
// never be checked in.
//
// Usage:
//
//	corpusgen [-n N] [-seed S] [-dir path] [-stats]
//
// -dir writes the corpus there (created if missing). Without -dir only
// the summary is printed — a fast way to inspect a seed's strata.
// -stats prints the per-stratum histogram.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/exp"
	"repro/internal/hlirgen"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	n := fs.Int("n", 1000, "number of programs to generate")
	seed := fs.Uint64("seed", 1, "corpus seed; same (n, seed) reproduces the same corpus byte for byte")
	dir := fs.String("dir", "", "output directory for .hlir files and manifest.jsonl (omit to only summarize)")
	stats := fs.Bool("stats", false, "print the per-stratum histogram")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "corpusgen: -n must be positive")
		return 1
	}

	items, err := hlirgen.Corpus(*seed, *n)
	if err != nil {
		return fail(err)
	}

	totalStmts := 0
	strata := map[string]int{}
	for _, it := range items {
		totalStmts += hlirgen.CountStmts(it.Prog.Body)
		strata[it.Stratum.Label()]++
	}

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return fail(err)
		}
		for _, it := range items {
			path := filepath.Join(*dir, it.Prog.Name+".hlir")
			if err := exp.WriteFileAtomic(path, []byte(it.Prog.String())); err != nil {
				return fail(err)
			}
		}
		manifest := hlirgen.EncodeManifest(*seed, items)
		if err := exp.WriteFileAtomic(filepath.Join(*dir, "manifest.jsonl"), manifest); err != nil {
			return fail(err)
		}
	}

	fmt.Printf("corpus: %d programs, seed %d, %d statements, %d strata\n",
		len(items), *seed, totalStmts, len(strata))
	if *dir != "" {
		fmt.Printf("wrote %d .hlir files + manifest.jsonl to %s\n", len(items), *dir)
	}
	if *stats {
		labels := make([]string, 0, len(strata))
		for l := range strata {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Printf("%-24s %d\n", l, strata[l])
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	return 1
}
