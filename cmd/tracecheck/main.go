// Command tracecheck validates a Chrome trace-event JSON file (as written
// by paperbench -tracefile) and prints a span summary: it parses the
// file, rejects negative timestamps/durations and improperly nested spans,
// and reports span counts by name plus the number of worker lanes. For
// traces carrying worker-state timeline lanes (category "state") it
// additionally checks each lane is a partition — no two states overlap,
// and the states cover the worker's run edge to edge with no gaps — and
// prints per-state interval counts. CI runs it over the smoke grid's
// trace; a non-zero exit means the trace is structurally broken.
//
// Usage:
//
//	tracecheck grid.trace.json
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	sum, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d spans on %d lanes\n", os.Args[1], sum.Spans, sum.Lanes)
	names := make([]string, 0, len(sum.Names))
	for n := range sum.Names {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-12s %d\n", n, sum.Names[n])
	}
	if sum.StateLanes > 0 {
		fmt.Printf("worker-state lanes: %d lanes, %d intervals (no overlaps, no gaps)\n",
			sum.StateLanes, sum.StateIntervals)
		states := make([]string, 0, len(sum.States))
		for n := range sum.States {
			states = append(states, n)
		}
		sort.Strings(states)
		for _, n := range states {
			fmt.Printf("  %-16s %d\n", n, sum.States[n])
		}
	}
}
